// Service-layer tests: wire protocol round-trips, shared buffer pool
// semantics, graph registry, scheduler (concurrency, coalescing,
// deadlines, admission control, result cache), fault injection, and an
// end-to-end socket exercise with concurrent clients.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "service/client.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "service/wire.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "test_helpers.h"

namespace opt {
namespace {

/// Creates an on-disk store for `g` and returns its base path (the
/// registry opens stores by path, unlike testutil::MakeStore which
/// returns an already-open store).
std::string MaterializeStore(const CSRGraph& g, Env* env,
                             const std::string& tag,
                             uint32_t page_size = 256) {
  static std::atomic<int> counter{0};
  const std::string base = testutil::ProcessTempDir() + "/svc_" + tag + "_" +
                           std::to_string(counter.fetch_add(1));
  GraphStoreOptions options;
  options.page_size = page_size;
  Status s = GraphStore::Create(g, env, base, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return base;
}

// ---------------------------------------------------------------------
// Wire protocol

TEST(Wire, QueryRequestRoundTrip) {
  QueryRequest request;
  request.graph = "web-graph";
  request.memory_pages = 128;
  request.num_threads = 4;
  request.deadline_millis = 2500;
  QueryRequest decoded;
  ASSERT_TRUE(
      DecodeQueryRequest(EncodeQueryRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.graph, request.graph);
  EXPECT_EQ(decoded.memory_pages, request.memory_pages);
  EXPECT_EQ(decoded.num_threads, request.num_threads);
  EXPECT_EQ(decoded.deadline_millis, request.deadline_millis);
}

TEST(Wire, CountResultRoundTrip) {
  CountResult result;
  result.triangles = 123456789012345ull;
  result.seconds = 0.625;
  result.source = 2;
  result.pool_hits = 77;
  result.pages_read = 400;
  result.iterations = 3;
  CountResult decoded;
  ASSERT_TRUE(
      DecodeCountResult(EncodeCountResult(result), &decoded).ok());
  EXPECT_EQ(decoded.triangles, result.triangles);
  EXPECT_EQ(decoded.seconds, result.seconds);
  EXPECT_EQ(decoded.source, result.source);
  EXPECT_EQ(decoded.pool_hits, result.pool_hits);
  EXPECT_EQ(decoded.pages_read, result.pages_read);
  EXPECT_EQ(decoded.iterations, result.iterations);
}

TEST(Wire, ListBatchRoundTrip) {
  ListBatch batch;
  batch.records.push_back({1, 2, {3, 4, 5}});
  batch.records.push_back({7, 9, {11}});
  batch.records.push_back({20, 21, {}});
  ListBatch decoded;
  ASSERT_TRUE(DecodeListBatch(EncodeListBatch(batch), &decoded).ok());
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_EQ(decoded.records[0].u, 1u);
  EXPECT_EQ(decoded.records[0].ws, (std::vector<VertexId>{3, 4, 5}));
  EXPECT_EQ(decoded.records[1].v, 9u);
  EXPECT_TRUE(decoded.records[2].ws.empty());
}

TEST(Wire, ErrorRoundTrip) {
  const Status original = Status::ResourceExhausted("queue full");
  ErrorResult decoded;
  ASSERT_TRUE(DecodeError(EncodeError(original), &decoded).ok());
  EXPECT_EQ(decoded.ToStatus(), original);
}

TEST(Wire, ErrorWithFlightEventsRoundTrip) {
  const Status original = Status::Unavailable("degraded by I/O fault");
  std::vector<FlightEvent> events;
  events.push_back({100, FlightEventType::kIoRetry, 7, 1});
  events.push_back({250, FlightEventType::kIoGiveup, 7, 10});
  events.push_back({300, FlightEventType::kDegrade, 10, 0});
  ErrorResult decoded;
  ASSERT_TRUE(DecodeError(EncodeError(original, events), &decoded).ok());
  EXPECT_EQ(decoded.ToStatus(), original);
  ASSERT_EQ(decoded.events.size(), 3u);
  EXPECT_EQ(decoded.events[0].type, FlightEventType::kIoRetry);
  EXPECT_EQ(decoded.events[0].t_micros, 100u);
  EXPECT_EQ(decoded.events[0].a, 7u);
  EXPECT_EQ(decoded.events[0].b, 1u);
  EXPECT_EQ(decoded.events[2].type, FlightEventType::kDegrade);
}

TEST(Wire, ErrorWithoutEventsDecodesToEmptyTail) {
  // An old server's frame ends after `message`; the decoder must not
  // demand the event section.
  ErrorResult decoded;
  ASSERT_TRUE(
      DecodeError(EncodeError(Status::NotFound("gone")), &decoded).ok());
  EXPECT_TRUE(decoded.events.empty());
}

TEST(Wire, ProfileResultRoundTrip) {
  ProfileResult result;
  result.triangles = 4242;
  result.seconds = 1.25;
  result.iterations = 3;
  result.period_micros = 250;
  result.samples = 1000;
  result.micro_overlap_samples = 700;
  result.macro_overlap_samples = 400;
  result.cpu_active_samples = 950;
  result.io_inflight_samples = 720;
  result.stalled_samples = 5;
  result.morph_events = 12;
  result.role_samples = {10, 500, 300, 40, 50, 100};
  result.micro_overlap = 0.7;
  result.macro_overlap = 0.4;
  result.cost_c_seconds_per_page = 1e-5;
  result.delta_in_pages = 64;
  result.delta_ex_pages = 320;
  result.cost_ideal_seconds = 1.0;
  result.cost_predicted_seconds = 1.2;
  result.cost_measured_seconds = 1.25;
  result.cost_residual_seconds = 0.05;
  ProfileResult decoded;
  ASSERT_TRUE(
      DecodeProfileResult(EncodeProfileResult(result), &decoded).ok());
  EXPECT_EQ(decoded.triangles, result.triangles);
  EXPECT_EQ(decoded.seconds, result.seconds);
  EXPECT_EQ(decoded.iterations, result.iterations);
  EXPECT_EQ(decoded.period_micros, result.period_micros);
  EXPECT_EQ(decoded.samples, result.samples);
  EXPECT_EQ(decoded.micro_overlap_samples, result.micro_overlap_samples);
  EXPECT_EQ(decoded.macro_overlap_samples, result.macro_overlap_samples);
  EXPECT_EQ(decoded.cpu_active_samples, result.cpu_active_samples);
  EXPECT_EQ(decoded.io_inflight_samples, result.io_inflight_samples);
  EXPECT_EQ(decoded.stalled_samples, result.stalled_samples);
  EXPECT_EQ(decoded.morph_events, result.morph_events);
  EXPECT_EQ(decoded.role_samples, result.role_samples);
  EXPECT_EQ(decoded.micro_overlap, result.micro_overlap);
  EXPECT_EQ(decoded.macro_overlap, result.macro_overlap);
  EXPECT_EQ(decoded.cost_c_seconds_per_page, result.cost_c_seconds_per_page);
  EXPECT_EQ(decoded.delta_in_pages, result.delta_in_pages);
  EXPECT_EQ(decoded.delta_ex_pages, result.delta_ex_pages);
  EXPECT_EQ(decoded.cost_ideal_seconds, result.cost_ideal_seconds);
  EXPECT_EQ(decoded.cost_predicted_seconds, result.cost_predicted_seconds);
  EXPECT_EQ(decoded.cost_measured_seconds, result.cost_measured_seconds);
  EXPECT_EQ(decoded.cost_residual_seconds, result.cost_residual_seconds);
}

TEST(Wire, TruncatedPayloadsAreCorruption) {
  QueryRequest request{"g", 1, 2, 3};
  request.trace_id = 0x1111222233334444ull;
  request.parent_span_id = 0x5555666677778888ull;
  const std::string payload = EncodeQueryRequest(request);
  // The last 16 bytes are the trace tail; a cut exactly at its start is
  // a valid frame from a pre-tracing client (ids decode as zero). Every
  // other cut is corruption.
  const size_t tail_start = payload.size() - 16;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    QueryRequest decoded;
    const Status s =
        DecodeQueryRequest(payload.substr(0, cut), &decoded);
    if (cut == tail_start) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(decoded.graph, "g");
      EXPECT_EQ(decoded.trace_id, 0u);
      EXPECT_EQ(decoded.parent_span_id, 0u);
    } else {
      EXPECT_EQ(s.code(), StatusCode::kCorruption) << "cut=" << cut;
    }
  }
}

TEST(Wire, RequestTraceTailsRoundTripAndOldFramesDecodeAsUntraced) {
  // New encoder → new decoder: the ids survive.
  QueryRequest query{"g", 8, 2, 1000};
  query.trace_id = 0xabcdef0123456789ull;
  query.parent_span_id = 0x42ull;
  QueryRequest query_decoded;
  ASSERT_TRUE(
      DecodeQueryRequest(EncodeQueryRequest(query), &query_decoded).ok());
  EXPECT_EQ(query_decoded.trace_id, query.trace_id);
  EXPECT_EQ(query_decoded.parent_span_id, query.parent_span_id);

  MutateRequest mutate;
  mutate.graph = "g";
  mutate.edges = {{1, 2}, {3, 4}};
  mutate.trace_id = 7;
  mutate.parent_span_id = 9;
  MutateRequest mutate_decoded;
  ASSERT_TRUE(
      DecodeMutateRequest(EncodeMutateRequest(mutate), &mutate_decoded)
          .ok());
  EXPECT_EQ(mutate_decoded.edges, mutate.edges);
  EXPECT_EQ(mutate_decoded.trace_id, 7u);
  EXPECT_EQ(mutate_decoded.parent_span_id, 9u);

  SubscribeCountRequest subscribe;
  subscribe.graph = "g";
  subscribe.after_epoch = 3;
  subscribe.timeout_millis = 50;
  subscribe.trace_id = 11;
  subscribe.parent_span_id = 13;
  SubscribeCountRequest subscribe_decoded;
  ASSERT_TRUE(DecodeSubscribeCountRequest(
                  EncodeSubscribeCountRequest(subscribe),
                  &subscribe_decoded)
                  .ok());
  EXPECT_EQ(subscribe_decoded.after_epoch, 3u);
  EXPECT_EQ(subscribe_decoded.trace_id, 11u);
  EXPECT_EQ(subscribe_decoded.parent_span_id, 13u);

  // Old frame → new decoder: chop the 16-byte tail off each encoding;
  // decode succeeds with zeroed ids and intact fixed fields.
  auto chop = [](std::string payload) {
    payload.resize(payload.size() - 16);
    return payload;
  };
  QueryRequest old_query;
  ASSERT_TRUE(
      DecodeQueryRequest(chop(EncodeQueryRequest(query)), &old_query).ok());
  EXPECT_EQ(old_query.memory_pages, 8u);
  EXPECT_EQ(old_query.trace_id, 0u);
  EXPECT_EQ(old_query.parent_span_id, 0u);
  MutateRequest old_mutate;
  ASSERT_TRUE(
      DecodeMutateRequest(chop(EncodeMutateRequest(mutate)), &old_mutate)
          .ok());
  EXPECT_EQ(old_mutate.edges, mutate.edges);
  EXPECT_EQ(old_mutate.trace_id, 0u);
  SubscribeCountRequest old_subscribe;
  ASSERT_TRUE(DecodeSubscribeCountRequest(
                  chop(EncodeSubscribeCountRequest(subscribe)),
                  &old_subscribe)
                  .ok());
  EXPECT_EQ(old_subscribe.timeout_millis, 50u);
  EXPECT_EQ(old_subscribe.trace_id, 0u);

  // New frame → old decoder: a pre-tracing peer reads the fixed fields
  // and must see no leftover bytes it would misparse as its own tail —
  // the tail is strictly appended, so the fixed prefix is byte-identical.
  QueryRequest untraced = query;
  untraced.trace_id = 0;
  untraced.parent_span_id = 0;
  const std::string new_frame = EncodeQueryRequest(query);
  const std::string old_frame = EncodeQueryRequest(untraced);
  ASSERT_EQ(new_frame.size(), old_frame.size());
  EXPECT_EQ(new_frame.substr(0, new_frame.size() - 16),
            old_frame.substr(0, old_frame.size() - 16));
}

TEST(Wire, ErrorTraceIdTailRoundTripsAndToleratesOldFrames) {
  // New encoder carries events + trace id; both decode.
  std::vector<FlightEvent> events;
  events.push_back({1000, FlightEventType::kIoRetry, 2, 1});
  ErrorResult decoded;
  ASSERT_TRUE(DecodeError(EncodeError(Status::Unavailable("degraded"),
                                      events, 0xfeedface0000ull),
                          &decoded)
                  .ok());
  EXPECT_EQ(decoded.code, static_cast<uint32_t>(StatusCode::kUnavailable));
  ASSERT_EQ(decoded.events.size(), 1u);
  EXPECT_EQ(decoded.trace_id, 0xfeedface0000ull);

  // Frame ending after events (pre-tracing server): trace_id zero.
  std::string no_trace_tail =
      EncodeError(Status::Unavailable("degraded"), events, 0x1234ull);
  no_trace_tail.resize(no_trace_tail.size() - 8);
  ErrorResult no_trace_decoded;
  ASSERT_TRUE(DecodeError(no_trace_tail, &no_trace_decoded).ok());
  ASSERT_EQ(no_trace_decoded.events.size(), 1u);
  EXPECT_EQ(no_trace_decoded.trace_id, 0u);
}

TEST(Wire, TracePullRoundTrip) {
  TracePullRequest request;
  request.drain = 0;
  TracePullRequest request_decoded;
  ASSERT_TRUE(DecodeTracePullRequest(EncodeTracePullRequest(request),
                                     &request_decoded)
                  .ok());
  EXPECT_EQ(request_decoded.drain, 0u);
  // Old-style empty payload (or a future peer sending nothing) decodes
  // as the drain default.
  TracePullRequest empty_decoded;
  ASSERT_TRUE(DecodeTracePullRequest("", &empty_decoded).ok());
  EXPECT_EQ(empty_decoded.drain, 1u);

  TracePullResult result;
  ProcessTrace section;
  section.pid = 4242;
  section.label = "shard7";
  section.unix_origin_micros = 1700000000000000ull;
  section.dropped_spans = 3;
  TraceEvent event;
  event.name = "query.count";
  event.category = "service";
  event.phase = 'X';
  event.ts_micros = 10;
  event.dur_micros = 250;
  event.tid = 2;
  event.trace_id = 0x77;
  event.span_id = 0x78;
  event.parent_span_id = 0x79;
  event.args_json = "\"graph\":\"g\"";
  section.events.push_back(event);
  result.processes.push_back(section);
  TracePullResult result_decoded;
  ASSERT_TRUE(DecodeTracePullResult(EncodeTracePullResult(result),
                                    &result_decoded)
                  .ok());
  ASSERT_EQ(result_decoded.processes.size(), 1u);
  const ProcessTrace& out = result_decoded.processes[0];
  EXPECT_EQ(out.pid, 4242u);
  EXPECT_EQ(out.label, "shard7");
  EXPECT_EQ(out.unix_origin_micros, section.unix_origin_micros);
  EXPECT_EQ(out.dropped_spans, 3u);
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].name, "query.count");
  EXPECT_EQ(out.events[0].phase, 'X');
  EXPECT_EQ(out.events[0].dur_micros, 250u);
  EXPECT_EQ(out.events[0].trace_id, 0x77u);
  EXPECT_EQ(out.events[0].span_id, 0x78u);
  EXPECT_EQ(out.events[0].parent_span_id, 0x79u);
  EXPECT_EQ(out.events[0].args_json, "\"graph\":\"g\"");
}

TEST(Wire, TracePullResultRejectsHostileCounts) {
  // A claimed process/event count far beyond the payload size must fail
  // with Corruption instead of reserving gigabytes.
  std::string hostile;
  PutU32(&hostile, 0x7fffffff);  // processes
  TracePullResult decoded;
  EXPECT_EQ(DecodeTracePullResult(hostile, &decoded).code(),
            StatusCode::kCorruption);

  std::string hostile_events;
  PutU32(&hostile_events, 1);  // one process
  PutU64(&hostile_events, 1);  // pid
  PutString(&hostile_events, "p");
  PutU64(&hostile_events, 0);           // origin
  PutU64(&hostile_events, 0);           // dropped
  PutU32(&hostile_events, 0x7fffffff);  // events
  EXPECT_EQ(DecodeTracePullResult(hostile_events, &decoded).code(),
            StatusCode::kCorruption);
}

TEST(Wire, PayloadReaderRejectsShortStrings) {
  std::string payload;
  PutU32(&payload, 100);  // claims 100 bytes, provides none
  PayloadReader reader(payload);
  std::string value;
  EXPECT_EQ(reader.GetString(&value).code(), StatusCode::kCorruption);
}

TEST(Wire, StatsResultRoundTrip) {
  StatsResult stats;
  stats.text = "scheduler.submitted=3\npool.lookups=10\n";
  stats.histograms.push_back(
      {"query.latency_us", 128, 3, 90000, 412.5, 210.0, 1800.0, 40000.0});
  stats.histograms.push_back(
      {"query.exec_us", 128, 1, 80000, 300.0, 150.0, 1500.0, 30000.0});
  stats.counters.push_back({"opt.internal.cache_hits", 77});
  stats.counters.push_back({"pool.fetch.hits", 41});
  StatsResult decoded;
  ASSERT_TRUE(DecodeStatsResult(EncodeStatsResult(stats), &decoded).ok());
  EXPECT_EQ(decoded.text, stats.text);
  ASSERT_EQ(decoded.histograms.size(), 2u);
  EXPECT_EQ(decoded.histograms[0].name, "query.latency_us");
  EXPECT_EQ(decoded.histograms[0].count, 128u);
  EXPECT_EQ(decoded.histograms[0].min, 3u);
  EXPECT_EQ(decoded.histograms[0].max, 90000u);
  EXPECT_DOUBLE_EQ(decoded.histograms[0].mean, 412.5);
  EXPECT_DOUBLE_EQ(decoded.histograms[0].p50, 210.0);
  EXPECT_DOUBLE_EQ(decoded.histograms[0].p95, 1800.0);
  EXPECT_DOUBLE_EQ(decoded.histograms[0].p99, 40000.0);
  ASSERT_EQ(decoded.counters.size(), 2u);
  EXPECT_EQ(decoded.counters[0].name, "opt.internal.cache_hits");
  EXPECT_EQ(decoded.counters[0].value, 77u);
  EXPECT_EQ(decoded.counters[1].name, "pool.fetch.hits");
  EXPECT_EQ(decoded.counters[1].value, 41u);
}

TEST(Wire, StatsResultForwardCompatibleBothDirections) {
  // Old client reading a new server's frame: the legacy decode path is
  // GetString on the payload, ignoring whatever follows.
  StatsResult stats;
  stats.text = "scheduler.submitted=1\n";
  stats.histograms.push_back({"query.latency_us", 1, 5, 5, 5, 5, 5, 5});
  stats.counters.push_back({"io.requests", 9});
  const std::string new_payload = EncodeStatsResult(stats);
  PayloadReader old_client(new_payload);
  std::string text;
  ASSERT_TRUE(old_client.GetString(&text).ok());
  EXPECT_EQ(text, stats.text);

  // New client reading an old server's frame (just the string): empty
  // structured sections, not a decode error.
  std::string old_payload;
  PutString(&old_payload, "cache.hits=2\n");
  StatsResult decoded;
  ASSERT_TRUE(DecodeStatsResult(old_payload, &decoded).ok());
  EXPECT_EQ(decoded.text, "cache.hits=2\n");
  EXPECT_TRUE(decoded.histograms.empty());
  EXPECT_TRUE(decoded.counters.empty());
}

TEST(Wire, StatsResultTruncatedStructuredSectionIsCorruption) {
  StatsResult stats;
  stats.histograms.push_back({"h", 1, 1, 1, 1, 1, 1, 1});
  const std::string payload = EncodeStatsResult(stats);
  StatsResult decoded;
  const Status s =
      DecodeStatsResult(payload.substr(0, payload.size() - 4), &decoded);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// Shared buffer pool

TEST(SharedPool, PageKeysAreNamespacedByOwner) {
  BufferPool pool(64, 8);
  auto a = pool.Fetch(MakePageKey(1, 7));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->outcome, BufferPool::FetchOutcome::kMiss);
  pool.MarkValid(a->frame);
  // Same pid under a different owner is a distinct page.
  auto b = pool.Fetch(MakePageKey(2, 7));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->outcome, BufferPool::FetchOutcome::kMiss);
  pool.MarkValid(b->frame);
  auto again = pool.Fetch(MakePageKey(1, 7));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->outcome, BufferPool::FetchOutcome::kHit);
  pool.Unpin(a->frame);
  pool.Unpin(b->frame);
  pool.Unpin(again->frame);
}

TEST(SharedPool, WaitValidWakesOnMarkFailed) {
  BufferPool pool(64, 4);
  auto miss = pool.Fetch(MakePageKey(1, 0));
  ASSERT_TRUE(miss.ok());
  ASSERT_EQ(miss->outcome, BufferPool::FetchOutcome::kMiss);
  auto waiter = pool.Fetch(MakePageKey(1, 0));
  ASSERT_TRUE(waiter.ok());
  ASSERT_EQ(waiter->outcome, BufferPool::FetchOutcome::kInFlight);
  std::thread failer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pool.MarkFailed(miss->frame);
  });
  const Status s = pool.WaitValid(waiter->frame);
  EXPECT_FALSE(s.ok());
  failer.join();
  pool.Unpin(miss->frame);
  pool.Unpin(waiter->frame);
}

TEST(SharedPool, DropOwnerEvictsOnlyThatOwner) {
  BufferPool pool(64, 8);
  for (uint32_t pid = 0; pid < 3; ++pid) {
    auto r = pool.Fetch(MakePageKey(1, pid));
    ASSERT_TRUE(r.ok());
    pool.MarkValid(r->frame);
    pool.Unpin(r->frame);
    r = pool.Fetch(MakePageKey(2, pid));
    ASSERT_TRUE(r.ok());
    pool.MarkValid(r->frame);
    pool.Unpin(r->frame);
  }
  pool.DropOwner(1);
  auto gone = pool.Fetch(MakePageKey(1, 0));
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->outcome, BufferPool::FetchOutcome::kMiss);
  pool.MarkValid(gone->frame);
  pool.Unpin(gone->frame);
  auto kept = pool.Fetch(MakePageKey(2, 0));
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->outcome, BufferPool::FetchOutcome::kHit);
  pool.Unpin(kept->frame);
}

TEST(SharedPool, StatsSnapshotAndReset) {
  BufferPool pool(64, 4);
  auto r = pool.Fetch(MakePageKey(1, 0));
  ASSERT_TRUE(r.ok());
  pool.MarkValid(r->frame);
  pool.Unpin(r->frame);
  auto hit = pool.Fetch(MakePageKey(1, 0));
  ASSERT_TRUE(hit.ok());
  pool.Unpin(hit->frame);
  const PoolStatsSnapshot before = pool.stats().Snapshot();
  EXPECT_EQ(before.lookups, 2u);
  EXPECT_EQ(before.hits, 1u);
  pool.stats().Reset();
  const PoolStatsSnapshot after = pool.stats().Snapshot();
  EXPECT_EQ(after.lookups, 0u);
  EXPECT_EQ(after.hits, 0u);
}

// ---------------------------------------------------------------------
// Graph registry

TEST(GraphRegistry, LoadAcquireList) {
  CSRGraph g = GenerateErdosRenyi(100, 500, 11);
  const std::string path = MaterializeStore(g, Env::Default(), "reg");
  GraphRegistry registry(Env::Default());
  EXPECT_EQ(registry.pool(), nullptr);
  ASSERT_TRUE(registry.LoadGraph("g1", path).ok());
  ASSERT_NE(registry.pool(), nullptr);
  auto handle = registry.Acquire("g1");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->name, "g1");
  EXPECT_EQ(handle->store->num_vertices(), 100u);
  EXPECT_FALSE(registry.Acquire("nope").ok());
  const auto infos = registry.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "g1");
  EXPECT_EQ(infos[0].num_vertices, 100u);
}

TEST(GraphRegistry, ReloadBumpsEpochAndKeepsOldHandleAlive) {
  CSRGraph g = GenerateErdosRenyi(80, 400, 3);
  const std::string path1 = MaterializeStore(g, Env::Default(), "re1");
  const std::string path2 = MaterializeStore(g, Env::Default(), "re2");
  GraphRegistry registry(Env::Default());
  ASSERT_TRUE(registry.LoadGraph("g", path1).ok());
  auto old_handle = registry.Acquire("g");
  ASSERT_TRUE(old_handle.ok());
  ASSERT_TRUE(registry.LoadGraph("g", path2).ok());
  auto new_handle = registry.Acquire("g");
  ASSERT_TRUE(new_handle.ok());
  EXPECT_GT(new_handle->epoch, old_handle->epoch);
  EXPECT_NE(new_handle->owner, old_handle->owner);
  // The replaced store stays usable through the old pin.
  EXPECT_EQ(old_handle->store->num_vertices(), 80u);
}

TEST(GraphRegistry, RejectsMismatchedPageSize) {
  CSRGraph g = GenerateErdosRenyi(50, 200, 9);
  const std::string p256 =
      MaterializeStore(g, Env::Default(), "ps256", 256);
  const std::string p512 =
      MaterializeStore(g, Env::Default(), "ps512", 512);
  GraphRegistry registry(Env::Default());
  ASSERT_TRUE(registry.LoadGraph("a", p256).ok());
  const Status s = registry.LoadGraph("b", p512);
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
}

// ---------------------------------------------------------------------
// Result cache

TEST(ResultCache, InsertLookupInvalidate) {
  ResultCache cache(8);
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", "g1", {42, 0.5, 1});
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->triangles, 42u);
  cache.InvalidateGraph("g1");
  EXPECT_FALSE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResultCache, EvictsOldestPastCapacity) {
  ResultCache cache(2);
  cache.Insert("a", "g", {1, 0, 1});
  cache.Insert("b", "g", {2, 0, 1});
  cache.Insert("c", "g", {3, 0, 1});
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------
// Scheduler

struct ServiceFixture {
  CSRGraph g1 = GenerateErdosRenyi(300, 3000, 42);
  CSRGraph g2 = GenerateErdosRenyi(250, 2500, 43);
  uint64_t oracle1 = testutil::OracleCount(g1);
  uint64_t oracle2 = testutil::OracleCount(g2);
  GraphRegistry registry;
  QueryScheduler scheduler;

  explicit ServiceFixture(Env* env, SchedulerOptions options = {})
      : registry(env), scheduler(&registry, options) {
    Status s = scheduler.LoadGraph(
        "g1", MaterializeStore(g1, env, "fix1"));
    EXPECT_TRUE(s.ok()) << s.ToString();
    s = scheduler.LoadGraph("g2", MaterializeStore(g2, env, "fix2"));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
};

TEST(QueryScheduler, CountMatchesOracle) {
  ServiceFixture fix(Env::Default());
  QuerySpec spec;
  spec.graph = "g1";
  const QueryResult result = fix.scheduler.Run(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.triangles, fix.oracle1);
  EXPECT_EQ(result.source, ResultSource::kExecuted);
}

TEST(QueryScheduler, UnknownGraphFailsFast) {
  ServiceFixture fix(Env::Default());
  QuerySpec spec;
  spec.graph = "missing";
  const QueryResult result = fix.scheduler.Run(spec);
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

TEST(QueryScheduler, ListRequiresSink) {
  ServiceFixture fix(Env::Default());
  QuerySpec spec;
  spec.graph = "g1";
  spec.kind = QueryKind::kList;
  const QueryResult result = fix.scheduler.Run(spec);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryScheduler, SecondIdenticalQueryHitsCache) {
  ServiceFixture fix(Env::Default());
  QuerySpec spec;
  spec.graph = "g2";
  const QueryResult first = fix.scheduler.Run(spec);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.source, ResultSource::kExecuted);
  const QueryResult second = fix.scheduler.Run(spec);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.source, ResultSource::kCache);
  EXPECT_EQ(second.triangles, fix.oracle2);
  EXPECT_EQ(fix.scheduler.stats().cache_hits, 1u);
}

TEST(QueryScheduler, SecondQueryObservesSharedPoolHits) {
  SchedulerOptions options;
  options.enable_result_cache = false;  // force a real second run
  ServiceFixture fix(Env::Default(), options);
  QuerySpec spec;
  spec.graph = "g1";
  spec.memory_pages = 512;  // roomy: the whole graph stays resident
  const QueryResult first = fix.scheduler.Run(spec);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.triangles, fix.oracle1);
  const QueryResult second = fix.scheduler.Run(spec);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.triangles, fix.oracle1);
  // The second run finds the first run's pages in the shared pool.
  EXPECT_GT(second.pool_hits, 0u);
  EXPECT_LT(second.pages_read, first.pages_read);
}

TEST(QueryScheduler, ConcurrentMixedQueriesAcrossTwoGraphs) {
  SchedulerOptions options;
  options.workers = 4;
  options.max_queue = 256;
  options.enable_result_cache = false;
  ServiceFixture fix(Env::Default(), options);
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const bool use_g1 = (c + q) % 2 == 0;
        QuerySpec spec;
        spec.graph = use_g1 ? "g1" : "g2";
        // Vary the budget so requests do not all coalesce.
        spec.memory_pages = 64 + 32 * (q % 3);
        CountingSink sink;
        if (q % 3 == 0) {
          spec.kind = QueryKind::kList;
          spec.list_sink = &sink;
        }
        const QueryResult result = fix.scheduler.Run(spec);
        const uint64_t expected = use_g1 ? fix.oracle1 : fix.oracle2;
        if (!result.status.ok() || result.triangles != expected) {
          ++failures;
          continue;
        }
        if (spec.kind == QueryKind::kList && sink.count() != expected) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const SchedulerStats stats = fix.scheduler.stats();
  EXPECT_EQ(stats.completed, uint64_t{kClients * kQueriesPerClient});
  EXPECT_EQ(stats.failed, 0u);
}

TEST(QueryScheduler, DuplicateCountsCoalesce) {
  // One worker + high read latency: the first query occupies the worker
  // while duplicates pile up; they must attach to the queued run, not
  // execute again.
  ThrottledEnv slow(Env::Default(), /*read_latency_micros=*/200);
  SchedulerOptions options;
  options.workers = 1;
  options.enable_result_cache = false;
  ServiceFixture fix(&slow, options);
  QuerySpec spec;
  spec.graph = "g1";
  std::vector<std::shared_future<QueryResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(fix.scheduler.Submit(spec));
  int executed = 0, coalesced = 0;
  for (auto& future : futures) {
    const QueryResult result = future.get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.triangles, fix.oracle1);
    if (result.source == ResultSource::kExecuted) ++executed;
    if (result.source == ResultSource::kCoalesced) ++coalesced;
  }
  // At least the very first submission runs; later ones may attach to
  // either in-flight run, but every coalesced waiter saves a full run.
  EXPECT_GE(coalesced, 1);
  EXPECT_GE(executed, 1);
  EXPECT_EQ(executed + coalesced, 6);
  EXPECT_GE(fix.scheduler.stats().coalesced, 1u);
  EXPECT_LT(fix.scheduler.stats().executed, 6u);
}

TEST(QueryScheduler, DeadlineExpiresQueuedQuery) {
  ThrottledEnv slow(Env::Default(), /*read_latency_micros=*/500);
  SchedulerOptions options;
  options.workers = 1;
  options.enable_result_cache = false;
  ServiceFixture fix(&slow, options);
  QuerySpec blocker;
  blocker.graph = "g1";
  auto blocker_future = fix.scheduler.Submit(blocker);
  QuerySpec hopeless;
  hopeless.graph = "g2";
  hopeless.deadline_millis = 1;  // expires while queued behind blocker
  const QueryResult expired = fix.scheduler.Run(hopeless);
  EXPECT_EQ(expired.status.code(), StatusCode::kAborted);
  const QueryResult blocked = blocker_future.get();
  EXPECT_TRUE(blocked.status.ok()) << blocked.status.ToString();
  EXPECT_GE(fix.scheduler.stats().deadline_expired, 1u);
}

TEST(QueryScheduler, AdmissionQueueRejectsOverflow) {
  ThrottledEnv slow(Env::Default(), /*read_latency_micros=*/500);
  SchedulerOptions options;
  options.workers = 1;
  options.max_queue = 2;
  options.enable_result_cache = false;
  ServiceFixture fix(&slow, options);
  std::vector<std::shared_future<QueryResult>> futures;
  // Distinct memory_pages defeat coalescing, so each submission needs
  // its own queue slot.
  for (int i = 0; i < 8; ++i) {
    QuerySpec spec;
    spec.graph = "g1";
    spec.memory_pages = 32 + i;
    futures.push_back(fix.scheduler.Submit(spec));
  }
  int rejected = 0;
  for (auto& future : futures) {
    if (future.get().status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(fix.scheduler.stats().rejected,
            static_cast<uint64_t>(rejected));
}

TEST(QueryScheduler, ReloadInvalidatesCacheAndAnswersFresh) {
  Env* env = Env::Default();
  CSRGraph small = GenerateErdosRenyi(60, 200, 7);
  CSRGraph big = GenerateErdosRenyi(200, 2400, 8);
  const uint64_t oracle_small = testutil::OracleCount(small);
  const uint64_t oracle_big = testutil::OracleCount(big);
  GraphRegistry registry(env);
  QueryScheduler scheduler(&registry, {});
  ASSERT_TRUE(
      scheduler.LoadGraph("g", MaterializeStore(small, env, "inv1")).ok());
  QuerySpec spec;
  spec.graph = "g";
  const QueryResult first = scheduler.Run(spec);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.triangles, oracle_small);
  ASSERT_TRUE(scheduler.Run(spec).source == ResultSource::kCache);
  ASSERT_TRUE(
      scheduler.LoadGraph("g", MaterializeStore(big, env, "inv2")).ok());
  const QueryResult after = scheduler.Run(spec);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.triangles, oracle_big);
  EXPECT_NE(after.source, ResultSource::kCache);
  EXPECT_GT(after.epoch, first.epoch);
}

TEST(QueryScheduler, InjectedReadFaultsFailQueriesNotProcess) {
  FaultInjectionEnv faulty(Env::Default());
  SchedulerOptions options;
  options.enable_result_cache = false;
  ServiceFixture fix(&faulty, options);
  QuerySpec spec;
  spec.graph = "g1";
  const QueryResult healthy = fix.scheduler.Run(spec);
  ASSERT_TRUE(healthy.status.ok());
  faulty.FailReadsAfter(0);
  const QueryResult hurt = fix.scheduler.Run(spec);
  EXPECT_FALSE(hurt.status.ok());
  faulty.FailReadsAfter(-1);
  const QueryResult recovered = fix.scheduler.Run(spec);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  EXPECT_EQ(recovered.triangles, fix.oracle1);
}

TEST(QueryScheduler, DegradedQueryCarriesItsFlightRecorderTail) {
  FaultInjectionEnv faulty(Env::Default());
  SchedulerOptions options;
  options.enable_result_cache = false;
  ServiceFixture fix(&faulty, options);
  faulty.FailReadsAfter(0);
  QuerySpec spec;
  spec.graph = "g1";
  const QueryResult hurt = fix.scheduler.Run(spec);
  faulty.FailReadsAfter(-1);
  ASSERT_FALSE(hurt.status.ok());
  EXPECT_TRUE(hurt.degraded);
  ASSERT_FALSE(hurt.flight_events.empty());
  // The tail must end with the degrade transition itself, preceded by
  // the I/O events that caused it.
  EXPECT_EQ(hurt.flight_events.back().type, FlightEventType::kDegrade);
  bool saw_io_failure = false;
  for (const FlightEvent& event : hurt.flight_events) {
    if (event.type == FlightEventType::kIoGiveup ||
        event.type == FlightEventType::kIoError) {
      saw_io_failure = true;
    }
  }
  EXPECT_TRUE(saw_io_failure);
  // Healthy queries carry no tail.
  const QueryResult healthy = fix.scheduler.Run(spec);
  ASSERT_TRUE(healthy.status.ok()) << healthy.status.ToString();
  EXPECT_TRUE(healthy.flight_events.empty());
}

TEST(QueryScheduler, ProfiledQueryReturnsOverlapReportAndSkipsCache) {
  ServiceFixture fix(Env::Default());
  QuerySpec spec;
  spec.graph = "g1";
  spec.profile = true;
  const QueryResult first = fix.scheduler.Run(spec);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.triangles, fix.oracle1);
  ASSERT_TRUE(first.profiled);
  EXPECT_GT(first.overlap.samples, 0u);
  EXPECT_LE(first.overlap.MicroOverlapFraction(), 1.0);
  EXPECT_LE(first.overlap.MacroOverlapFraction(), 1.0);
  EXPECT_GT(first.overlap.cost.measured_seconds, 0.0);
  // A profiled rerun measures a fresh run instead of answering from the
  // result cache.
  const QueryResult second = fix.scheduler.Run(spec);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.source, ResultSource::kExecuted);
  EXPECT_TRUE(second.profiled);
}

// ---------------------------------------------------------------------
// End-to-end over sockets

TEST(OptServer, EndToEndConcurrentClients) {
  Env* env = Env::Default();
  CSRGraph g1 = GenerateErdosRenyi(300, 3000, 21);
  CSRGraph g2 = GenerateErdosRenyi(250, 2500, 22);
  const uint64_t oracle1 = testutil::OracleCount(g1);
  const uint64_t oracle2 = testutil::OracleCount(g2);
  const std::string path1 = MaterializeStore(g1, env, "srv1");
  const std::string path2 = MaterializeStore(g2, env, "srv2");

  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 4;
  options.max_queue = 256;
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(scheduler.LoadGraph("g1", path1).ok());

  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.bound_port();

  // g2 arrives over the wire.
  {
    OptClient admin;
    ASSERT_TRUE(admin.ConnectTcp("127.0.0.1", port).ok());
    ASSERT_TRUE(admin.LoadGraph("g2", path2).ok());
    auto missing = admin.Count("never-loaded");
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  }

  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      OptClient client;
      if (!client.ConnectTcp("127.0.0.1", port).ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < 4; ++q) {
        const bool use_g1 = (c + q) % 2 == 0;
        const std::string graph = use_g1 ? "g1" : "g2";
        const uint64_t expected = use_g1 ? oracle1 : oracle2;
        if (q % 2 == 0) {
          auto result = client.Count(graph);
          if (!result.ok() || result->triangles != expected) {
            ++failures;
          }
        } else {
          uint64_t streamed = 0;
          auto end = client.List(graph, [&](const ListBatch& batch) {
            for (const auto& record : batch.records) {
              streamed += record.ws.size();
            }
          });
          if (!end.ok() || end->triangles != expected ||
              streamed != expected) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  OptClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("scheduler.completed="), std::string::npos);
  EXPECT_NE(stats->find("pool.frames="), std::string::npos);
  EXPECT_NE(stats->find("graph.g2.vertices=250"), std::string::npos);

  server.Stop();
}

TEST(OptServer, UnixSocketCountAndDisabledLoadGraph) {
  Env* env = Env::Default();
  CSRGraph g = GenerateErdosRenyi(120, 900, 33);
  const uint64_t oracle = testutil::OracleCount(g);
  const std::string path = MaterializeStore(g, env, "unix");
  GraphRegistry registry(env);
  QueryScheduler scheduler(&registry, {});
  ASSERT_TRUE(scheduler.LoadGraph("g", path).ok());
  OptServer server(&scheduler, /*allow_load_graph=*/false);
  const std::string socket_path =
      testutil::ProcessTempDir() + "/opt_service_test.sock";
  ASSERT_TRUE(server.ListenUnix(socket_path).ok());
  ASSERT_TRUE(server.Start().ok());

  OptClient client;
  ASSERT_TRUE(client.ConnectUnix(socket_path).ok());
  auto result = client.Count("g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->triangles, oracle);
  EXPECT_EQ(client.LoadGraph("x", path).code(),
            StatusCode::kNotSupported);
  // The connection survives an error reply.
  auto again = client.Count("g");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->triangles, oracle);
  server.Stop();
}

TEST(OptServer, ProfileQueryReturnsOverlapReportOverTheWire) {
  Env* env = Env::Default();
  CSRGraph g = GenerateErdosRenyi(300, 3000, 55);
  const uint64_t oracle = testutil::OracleCount(g);
  GraphRegistry registry(env);
  QueryScheduler scheduler(&registry, {});
  ASSERT_TRUE(
      scheduler.LoadGraph("g", MaterializeStore(g, env, "profsrv")).ok());
  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());

  OptClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.bound_port()).ok());
  auto profile = client.Profile("g");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->triangles, oracle);
  EXPECT_GT(profile->samples, 0u);
  EXPECT_LE(profile->micro_overlap, 1.0);
  EXPECT_LE(profile->macro_overlap, 1.0);
  EXPECT_EQ(profile->role_samples.size(), kNumThreadRoles);
  EXPECT_GT(profile->cost_measured_seconds, 0.0);
  // The connection stays usable for a plain COUNT afterwards.
  auto count = client.Count("g");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->triangles, oracle);
  server.Stop();
}

TEST(OptServer, DegradedQueryShipsFlightRecorderTailOverTheWire) {
  FaultInjectionEnv faulty(Env::Default());
  CSRGraph g = GenerateErdosRenyi(300, 3000, 56);
  GraphRegistry registry(&faulty);
  SchedulerOptions options;
  options.enable_result_cache = false;
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("g", MaterializeStore(g, &faulty, "degsrv")).ok());
  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());

  OptClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.bound_port()).ok());
  faulty.FailReadsAfter(0);
  auto hurt = client.Count("g");
  faulty.FailReadsAfter(-1);
  ASSERT_FALSE(hurt.ok());
  EXPECT_EQ(hurt.status().code(), StatusCode::kUnavailable);
  // The ERROR frame carried the query's own postmortem.
  const std::vector<FlightEvent>& events = client.last_error_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, FlightEventType::kDegrade);
  // A healthy request on the same connection clears the stashed tail.
  auto healed = client.Count("g");
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_TRUE(client.last_error_events().empty());
  server.Stop();
}

// ---------------------------------------------------------------------
// Streaming deltas over the wire

TEST(Wire, MutateRequestRoundTrip) {
  MutateRequest request;
  request.graph = "stream-graph";
  request.edges = {{1, 2}, {7, 3}, {0, 4100000}};
  MutateRequest decoded;
  ASSERT_TRUE(
      DecodeMutateRequest(EncodeMutateRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.graph, request.graph);
  EXPECT_EQ(decoded.edges, request.edges);
}

TEST(Wire, MutateRequestRejectsCountBeyondPayload) {
  // The edge count is attacker-controlled: a tiny frame claiming 2^32-1
  // edges must fail the decode up front (typed, no multi-GB reserve),
  // and a merely-inflated count must fail the same way.
  std::string huge;
  PutString(&huge, "g");
  PutU32(&huge, 0xFFFFFFFFu);
  PutU32(&huge, 1);  // a single half-edge of trailing bytes
  MutateRequest decoded;
  Status status = DecodeMutateRequest(huge, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();

  std::string inflated;
  PutString(&inflated, "g");
  PutU32(&inflated, 3);  // claims 3 edges, carries 1
  PutU32(&inflated, 1);
  PutU32(&inflated, 2);
  status = DecodeMutateRequest(inflated, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

TEST(Wire, MutateResultRoundTripWithNegativeDeltas) {
  MutateResult result;
  result.epoch = 17;
  result.batch_triangle_delta = -12345;
  result.total_triangle_delta = -67890;
  result.edges_applied = 64;
  result.seconds = 0.0625;
  result.approx_valid = 1;
  result.approx_triangles = 1234.5;
  MutateResult decoded;
  ASSERT_TRUE(
      DecodeMutateResult(EncodeMutateResult(result), &decoded).ok());
  EXPECT_EQ(decoded.epoch, result.epoch);
  EXPECT_EQ(decoded.batch_triangle_delta, result.batch_triangle_delta);
  EXPECT_EQ(decoded.total_triangle_delta, result.total_triangle_delta);
  EXPECT_EQ(decoded.edges_applied, result.edges_applied);
  EXPECT_EQ(decoded.seconds, result.seconds);
  EXPECT_EQ(decoded.approx_valid, result.approx_valid);
  EXPECT_EQ(decoded.approx_triangles, result.approx_triangles);
}

TEST(Wire, SubscribeCountRequestRoundTrip) {
  SubscribeCountRequest request;
  request.graph = "g";
  request.after_epoch = 41;
  request.timeout_millis = 2500;
  SubscribeCountRequest decoded;
  ASSERT_TRUE(DecodeSubscribeCountRequest(
                  EncodeSubscribeCountRequest(request), &decoded)
                  .ok());
  EXPECT_EQ(decoded.graph, request.graph);
  EXPECT_EQ(decoded.after_epoch, request.after_epoch);
  EXPECT_EQ(decoded.timeout_millis, request.timeout_millis);
}

TEST(Wire, SubscribeCountResultRoundTrip) {
  SubscribeCountResult result;
  result.epoch = 99;
  result.timed_out = 1;
  result.exact_known = 1;
  result.triangles = 123456789ull;
  result.delta_triangles = -42;
  result.edges_added = 7;
  result.edges_removed = 3;
  result.approx_valid = 1;
  result.approx_triangles = 98765.25;
  SubscribeCountResult decoded;
  ASSERT_TRUE(DecodeSubscribeCountResult(
                  EncodeSubscribeCountResult(result), &decoded)
                  .ok());
  EXPECT_EQ(decoded.epoch, result.epoch);
  EXPECT_EQ(decoded.timed_out, result.timed_out);
  EXPECT_EQ(decoded.exact_known, result.exact_known);
  EXPECT_EQ(decoded.triangles, result.triangles);
  EXPECT_EQ(decoded.delta_triangles, result.delta_triangles);
  EXPECT_EQ(decoded.edges_added, result.edges_added);
  EXPECT_EQ(decoded.edges_removed, result.edges_removed);
  EXPECT_EQ(decoded.approx_valid, result.approx_valid);
  EXPECT_EQ(decoded.approx_triangles, result.approx_triangles);
}

TEST(OptServer, StreamingMutationsEndToEnd) {
  Env* env = Env::Default();
  // K4 minus {2,3}: 2 triangles; adding {2,3} closes 2 more.
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {0, 2}, {0, 3}, {1, 2},
                                        {1, 3}});
  const std::string path = MaterializeStore(g, env, "mut_e2e");
  GraphRegistry registry(env);
  QueryScheduler scheduler(&registry, {});
  ASSERT_TRUE(scheduler.LoadGraph("g", path).ok());
  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());

  OptClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.bound_port()).ok());
  auto base = client.Count("g");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->triangles, 2u);

  // Typed rejections ride the wire as InvalidArgument; the batch is all
  // or nothing, so state (epoch, count) is untouched even when valid
  // edges precede the bad one.
  auto self_loop = client.AddEdges("g", {{1, 1}});
  EXPECT_EQ(self_loop.status().code(), StatusCode::kInvalidArgument);
  auto duplicate = client.AddEdges("g", {{2, 3}, {3, 2}});
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
  auto mixed = client.AddEdges("g", {{2, 3}, {0, 1}});
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);
  auto absent = client.RemoveEdges("g", {{2, 3}});
  EXPECT_EQ(absent.status().code(), StatusCode::kInvalidArgument);
  auto snap0 = client.SubscribeCount("g", 0, 0);
  ASSERT_TRUE(snap0.ok()) << snap0.status().ToString();
  EXPECT_EQ(snap0->delta_triangles, 0);
  EXPECT_EQ(snap0->edges_added, 0u);
  ASSERT_TRUE(snap0->exact_known);
  EXPECT_EQ(snap0->triangles, 2u);
  const uint64_t epoch0 = snap0->epoch;

  // A valid batch bumps the epoch and COUNT folds the delta in.
  auto added = client.AddEdges("g", {{2, 3}});
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_GT(added->epoch, epoch0);
  EXPECT_EQ(added->batch_triangle_delta, 2);
  EXPECT_EQ(added->edges_applied, 1u);
  auto counted = client.Count("g");
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->triangles, 4u);

  // LIST refuses while the overlay is dirty; COUNT stays exact.
  auto dirty_list = client.List("g", [](const ListBatch&) {});
  EXPECT_EQ(dirty_list.status().code(), StatusCode::kNotSupported);

  // Long-poll: a concurrent mutation wakes the subscriber with the new
  // epoch and the already-folded exact total.
  std::thread mutator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    OptClient writer;
    ASSERT_TRUE(
        writer.ConnectTcp("127.0.0.1", server.bound_port()).ok());
    auto removed = writer.RemoveEdges("g", {{2, 3}});
    EXPECT_TRUE(removed.ok()) << removed.status().ToString();
  });
  auto woken = client.SubscribeCount("g", added->epoch, 10000);
  mutator.join();
  ASSERT_TRUE(woken.ok()) << woken.status().ToString();
  EXPECT_FALSE(woken->timed_out);
  EXPECT_GT(woken->epoch, added->epoch);
  EXPECT_EQ(woken->delta_triangles, 0);
  ASSERT_TRUE(woken->exact_known);
  EXPECT_EQ(woken->triangles, 2u);

  // Add-then-remove restored the base: LIST works again and the answer
  // matches the original.
  uint64_t streamed = 0;
  auto list_end = client.List("g", [&](const ListBatch& batch) {
    for (const auto& record : batch.records) streamed += record.ws.size();
  });
  ASSERT_TRUE(list_end.ok()) << list_end.status().ToString();
  EXPECT_EQ(streamed, 2u);

  // The delta apply latency histogram is visible through STATS.
  auto stats = client.StatsFull();
  ASSERT_TRUE(stats.ok());
  bool saw_delta_hist = false;
  for (const auto& histogram : stats->histograms) {
    if (histogram.name == "delta.apply_us" && histogram.count > 0) {
      saw_delta_hist = true;
    }
  }
  EXPECT_TRUE(saw_delta_hist);
  EXPECT_NE(stats->text.find("graph.g.delta_edges_added=0"),
            std::string::npos);
  server.Stop();
}

TEST(OptServer, MutationsCanBeDisabled) {
  Env* env = Env::Default();
  CSRGraph g = GenerateErdosRenyi(40, 120, 91);
  GraphRegistry registry(env);
  QueryScheduler scheduler(&registry, {});
  ASSERT_TRUE(
      scheduler.LoadGraph("g", MaterializeStore(g, env, "romut")).ok());
  OptServer server(&scheduler, /*allow_load_graph=*/true,
                   /*allow_mutations=*/false);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());
  OptClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.bound_port()).ok());
  EXPECT_EQ(client.AddEdges("g", {{0, 1}}).status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(client.RemoveEdges("g", {{0, 1}}).status().code(),
            StatusCode::kNotSupported);
  // SUBSCRIBE_COUNT is a read op and stays available; with mutations
  // off the epoch only moves on reload.
  auto snapshot = client.SubscribeCount("g", 0, 0);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->edges_added, 0u);
  // The connection survives and plain queries still work.
  auto count = client.Count("g");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  server.Stop();
}

TEST(OptServer, SubscribePrimesBaseCountInBackground) {
  Env* env = Env::Default();
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {0, 2}, {0, 3}, {1, 2},
                                        {1, 3}});
  GraphRegistry registry(env);
  QueryScheduler scheduler(&registry, {});
  ASSERT_TRUE(
      scheduler.LoadGraph("g", MaterializeStore(g, env, "prime")).ok());
  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());
  OptClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.bound_port()).ok());

  // No COUNT has run yet: the subscribe returns without paying a full
  // count's latency on the connection thread and schedules the base
  // count in the background instead of blocking on it.
  auto first = client.SubscribeCount("g", 0, 0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->delta_triangles, 0);

  // The primed base becomes visible to a later subscribe.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    auto snap = client.SubscribeCount("g", 0, 0);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    if (snap->exact_known) {
      EXPECT_EQ(snap->triangles, 2u);
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "background prime never recorded the base count";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
}

}  // namespace
}  // namespace opt
