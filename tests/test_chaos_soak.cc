// Chaos/soak suite: a real opt_server on a FaultInjectingEnv, hammered
// by concurrent clients mixing COUNT, LIST, and LOADGRAPH while the
// device injects transient errors, torn reads, and latency spikes.
// Invariants under chaos:
//   * the process neither deadlocks nor crashes — every query answers
//     within the soak window;
//   * every non-degraded COUNT/LIST answer is exactly the oracle count
//     (faults may degrade a query to Unavailable, never corrupt it);
//   * the shared buffer pool keeps serving after degraded queries (no
//     stuck kInFlight frames).
// Runtime defaults to a few seconds; set OPT_SOAK_SECONDS for a longer
// nightly soak. The fault plan prints at start — any failure reproduces
// with `opt_server --fault-plan "<spec>"`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gen/erdos_renyi.h"
#include "graph/csr_graph.h"
#include "service/client.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "service/server.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/graph_store.h"
#include "test_helpers.h"

namespace opt {
namespace {

int SoakSeconds() {
  const char* override_sec = std::getenv("OPT_SOAK_SECONDS");
  if (override_sec != nullptr) {
    const int parsed = std::atoi(override_sec);
    if (parsed > 0) return parsed;
  }
  return 3;
}

std::string MaterializeStore(const CSRGraph& g, Env* env,
                             const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string base = testutil::ProcessTempDir() + "/chaos_" + tag +
                           "_" + std::to_string(counter.fetch_add(1));
  GraphStoreOptions options;
  options.page_size = 256;
  Status s = GraphStore::Create(g, env, base, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return base;
}

TEST(ChaosSoak, MixedWorkloadUnderFaultsNeverCorruptsOrDeadlocks) {
  auto plan = FaultPlan::Parse(
      "seed=1337,read_error_p=0.03,transient=1,torn_read_p=0.01,"
      "latency_p=0.05,latency_us=300,path_filter=.pages");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::fprintf(stderr, "chaos fault plan: --fault-plan \"%s\"\n",
               plan->ToString().c_str());

  Env* base = Env::Default();
  FaultInjectingEnv fenv(base, *plan);

  CSRGraph g1 = GenerateErdosRenyi(300, 3200, 51);
  CSRGraph g2 = GenerateErdosRenyi(240, 2400, 52);
  const uint64_t oracle1 = testutil::OracleCount(g1);
  const uint64_t oracle2 = testutil::OracleCount(g2);
  // Build the stores fault-free; chaos targets the serving path.
  fenv.set_enabled(false);
  const std::string path1 = MaterializeStore(g1, &fenv, "g1");
  const std::string path2 = MaterializeStore(g2, &fenv, "g2");

  GraphRegistry registry(&fenv);
  SchedulerOptions scheduler_options;
  scheduler_options.workers = 4;
  scheduler_options.max_queue = 256;
  // Fresh executions, not cache echoes: every COUNT exercises the
  // fault-injected read path.
  scheduler_options.enable_result_cache = false;
  QueryScheduler scheduler(&registry, scheduler_options);
  ASSERT_TRUE(scheduler.LoadGraph("g1", path1).ok());
  ASSERT_TRUE(scheduler.LoadGraph("g2", path2).ok());

  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.bound_port();
  fenv.set_enabled(true);

  constexpr int kClients = 8;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> exact{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> reloads{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      OptClient client;
      if (!client.ConnectTcp("127.0.0.1", port).ok()) {
        ++failures;
        return;
      }
      uint64_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++q;
        const bool use_g1 = (c + q) % 2 == 0;
        const std::string graph = use_g1 ? "g1" : "g2";
        const uint64_t expected = use_g1 ? oracle1 : oracle2;
        const uint64_t kind = (c + q) % 8;
        if (kind == 7 && c == 0) {
          // Periodic LOADGRAPH (reload in place) races the queries —
          // epochs bump, old pins stay valid, answers stay exact.
          if (client.LoadGraph(graph, use_g1 ? path1 : path2).ok()) {
            reloads.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        if (kind % 2 == 0) {
          auto result = client.Count(graph);
          if (result.ok()) {
            if (result->triangles != expected) {
              ADD_FAILURE() << "wrong COUNT on " << graph << ": "
                            << result->triangles << " != " << expected;
              ++failures;
            } else {
              exact.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (result.status().IsUnavailable()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected COUNT error: "
                          << result.status().ToString();
            ++failures;
          }
        } else {
          uint64_t streamed = 0;
          auto end = client.List(graph, [&](const ListBatch& batch) {
            for (const auto& record : batch.records) {
              streamed += record.ws.size();
            }
          });
          if (end.ok()) {
            if (end->triangles != expected || streamed != expected) {
              ADD_FAILURE() << "wrong LIST on " << graph << ": trailer "
                            << end->triangles << " streamed " << streamed
                            << " != " << expected;
              ++failures;
            } else {
              exact.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (end.status().IsUnavailable()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected LIST error: "
                          << end.status().ToString();
            ++failures;
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(SoakSeconds()));
  stop.store(true, std::memory_order_relaxed);
  // Join IS the no-deadlock assertion: a wedged query would hang the
  // soak here (and trip the ctest timeout).
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(exact.load(), 0u) << "soak produced no successful queries";
  std::fprintf(stderr,
               "chaos soak: %llu exact, %llu degraded, %llu reloads, "
               "%llu injected read errors, %llu torn, %llu latency\n",
               static_cast<unsigned long long>(exact.load()),
               static_cast<unsigned long long>(degraded.load()),
               static_cast<unsigned long long>(reloads.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_read_errors.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_torn_reads.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_latency.load()));

  // The pool survived the chaos: with injection off, the same server
  // stack (fresh connection; the server was stopped, so go straight at
  // the scheduler) still answers exactly.
  fenv.set_enabled(false);
  QuerySpec spec;
  spec.graph = "g1";
  const QueryResult final_check = scheduler.Run(spec);
  ASSERT_TRUE(final_check.status.ok()) << final_check.status.ToString();
  EXPECT_EQ(final_check.triangles, oracle1);
}

}  // namespace
}  // namespace opt
