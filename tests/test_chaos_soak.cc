// Chaos/soak suite: a real opt_server on a FaultInjectingEnv, hammered
// by concurrent clients mixing COUNT, LIST, and LOADGRAPH while the
// device injects transient errors, torn reads, and latency spikes.
// Invariants under chaos:
//   * the process neither deadlocks nor crashes — every query answers
//     within the soak window;
//   * every non-degraded COUNT/LIST answer is exactly the oracle count
//     (faults may degrade a query to Unavailable, never corrupt it);
//   * the shared buffer pool keeps serving after degraded queries (no
//     stuck kInFlight frames).
// Runtime defaults to a few seconds; set OPT_SOAK_SECONDS for a longer
// nightly soak. The fault plan prints at start — any failure reproduces
// with `opt_server --fault-plan "<spec>"`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/erdos_renyi.h"
#include "graph/csr_graph.h"
#include "service/client.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "service/server.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/graph_store.h"
#include "test_helpers.h"

namespace opt {
namespace {

int SoakSeconds() {
  const char* override_sec = std::getenv("OPT_SOAK_SECONDS");
  if (override_sec != nullptr) {
    const int parsed = std::atoi(override_sec);
    if (parsed > 0) return parsed;
  }
  return 3;
}

std::string MaterializeStore(const CSRGraph& g, Env* env,
                             const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string base = testutil::ProcessTempDir() + "/chaos_" + tag +
                           "_" + std::to_string(counter.fetch_add(1));
  GraphStoreOptions options;
  options.page_size = 256;
  Status s = GraphStore::Create(g, env, base, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return base;
}

TEST(ChaosSoak, MixedWorkloadUnderFaultsNeverCorruptsOrDeadlocks) {
  auto plan = FaultPlan::Parse(
      "seed=1337,read_error_p=0.03,transient=1,torn_read_p=0.01,"
      "latency_p=0.05,latency_us=300,path_filter=.pages");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::fprintf(stderr, "chaos fault plan: --fault-plan \"%s\"\n",
               plan->ToString().c_str());

  Env* base = Env::Default();
  FaultInjectingEnv fenv(base, *plan);

  CSRGraph g1 = GenerateErdosRenyi(300, 3200, 51);
  CSRGraph g2 = GenerateErdosRenyi(240, 2400, 52);
  const uint64_t oracle1 = testutil::OracleCount(g1);
  const uint64_t oracle2 = testutil::OracleCount(g2);
  // Build the stores fault-free; chaos targets the serving path.
  fenv.set_enabled(false);
  const std::string path1 = MaterializeStore(g1, &fenv, "g1");
  const std::string path2 = MaterializeStore(g2, &fenv, "g2");

  GraphRegistry registry(&fenv);
  SchedulerOptions scheduler_options;
  scheduler_options.workers = 4;
  scheduler_options.max_queue = 256;
  // Fresh executions, not cache echoes: every COUNT exercises the
  // fault-injected read path.
  scheduler_options.enable_result_cache = false;
  QueryScheduler scheduler(&registry, scheduler_options);
  ASSERT_TRUE(scheduler.LoadGraph("g1", path1).ok());
  ASSERT_TRUE(scheduler.LoadGraph("g2", path2).ok());

  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.bound_port();
  fenv.set_enabled(true);

  constexpr int kClients = 8;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> exact{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> reloads{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      OptClient client;
      if (!client.ConnectTcp("127.0.0.1", port).ok()) {
        ++failures;
        return;
      }
      uint64_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++q;
        const bool use_g1 = (c + q) % 2 == 0;
        const std::string graph = use_g1 ? "g1" : "g2";
        const uint64_t expected = use_g1 ? oracle1 : oracle2;
        const uint64_t kind = (c + q) % 8;
        if (kind == 7 && c == 0) {
          // Periodic LOADGRAPH (reload in place) races the queries —
          // epochs bump, old pins stay valid, answers stay exact.
          if (client.LoadGraph(graph, use_g1 ? path1 : path2).ok()) {
            reloads.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        if (kind % 2 == 0) {
          auto result = client.Count(graph);
          if (result.ok()) {
            if (result->triangles != expected) {
              ADD_FAILURE() << "wrong COUNT on " << graph << ": "
                            << result->triangles << " != " << expected;
              ++failures;
            } else {
              exact.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (result.status().IsUnavailable()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected COUNT error: "
                          << result.status().ToString();
            ++failures;
          }
        } else {
          uint64_t streamed = 0;
          auto end = client.List(graph, [&](const ListBatch& batch) {
            for (const auto& record : batch.records) {
              streamed += record.ws.size();
            }
          });
          if (end.ok()) {
            if (end->triangles != expected || streamed != expected) {
              ADD_FAILURE() << "wrong LIST on " << graph << ": trailer "
                            << end->triangles << " streamed " << streamed
                            << " != " << expected;
              ++failures;
            } else {
              exact.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (end.status().IsUnavailable()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected LIST error: "
                          << end.status().ToString();
            ++failures;
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(SoakSeconds()));
  stop.store(true, std::memory_order_relaxed);
  // Join IS the no-deadlock assertion: a wedged query would hang the
  // soak here (and trip the ctest timeout).
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(exact.load(), 0u) << "soak produced no successful queries";
  std::fprintf(stderr,
               "chaos soak: %llu exact, %llu degraded, %llu reloads, "
               "%llu injected read errors, %llu torn, %llu latency\n",
               static_cast<unsigned long long>(exact.load()),
               static_cast<unsigned long long>(degraded.load()),
               static_cast<unsigned long long>(reloads.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_read_errors.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_torn_reads.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_latency.load()));

  // The pool survived the chaos: with injection off, the same server
  // stack (fresh connection; the server was stopped, so go straight at
  // the scheduler) still answers exactly.
  fenv.set_enabled(false);
  QuerySpec spec;
  spec.graph = "g1";
  const QueryResult final_check = scheduler.Run(spec);
  ASSERT_TRUE(final_check.status.ok()) << final_check.status.ToString();
  EXPECT_EQ(final_check.triangles, oracle1);
}

uint64_t CommonNeighborCount(const CSRGraph& g, VertexId u, VertexId v) {
  const auto nu = g.Neighbors(u);
  const auto nv = g.Neighbors(v);
  uint64_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

// Streaming mutations join the chaos: one mutator toggles a fixed batch
// of absent edges (add, then remove, forever) while readers hammer
// COUNT/LIST and a long-poll snapshot. The batch is built so every
// partial application is distinguishable — pairwise vertex-disjoint
// edges, each closing at least one triangle on its own — which turns
// "no query observes a half-applied batch" into an exact two-point
// invariant: every healthy COUNT is T0 (batch absent) or T0+D (batch
// present), nothing in between. Degraded mutations must report
// Unavailable with the batch NOT applied: the mutator retries the same
// batch verbatim, and a typed already-present/not-present rejection on
// that retry would prove a silently half-committed batch.
TEST(ChaosSoak, StreamingMutationsUnderFaultsKeepEpochAtomicity) {
  auto plan = FaultPlan::Parse(
      "seed=4242,read_error_p=0.03,transient=1,torn_read_p=0.01,"
      "latency_p=0.05,latency_us=300,path_filter=.pages");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::fprintf(stderr, "chaos fault plan: --fault-plan \"%s\"\n",
               plan->ToString().c_str());

  Env* base = Env::Default();
  FaultInjectingEnv fenv(base, *plan);

  const CSRGraph g = GenerateErdosRenyi(260, 2600, 53);
  const uint64_t oracle = testutil::OracleCount(g);

  // The toggled batch: three pairwise vertex-disjoint absent edges,
  // each with at least one common neighbor in the base graph. Disjoint
  // endpoints mean no batch edge interacts with another, so the batch
  // delta is the sum of per-edge deltas and every prefix sum is
  // strictly between 0 and D — a half-applied batch cannot masquerade
  // as either legal state.
  std::vector<std::pair<VertexId, VertexId>> batch;
  std::vector<bool> used(g.num_vertices(), false);
  uint64_t batch_delta = 0;
  for (VertexId u = 0; u < g.num_vertices() && batch.size() < 3; ++u) {
    if (used[u]) continue;
    for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
      if (used[v] || g.HasEdge(u, v)) continue;
      const uint64_t closes = CommonNeighborCount(g, u, v);
      if (closes == 0) continue;
      batch.emplace_back(u, v);
      batch_delta += closes;
      used[u] = used[v] = true;
      break;
    }
  }
  ASSERT_EQ(batch.size(), 3u) << "graph too sparse to build the batch";
  ASSERT_GT(batch_delta, 0u);

  fenv.set_enabled(false);
  const std::string path = MaterializeStore(g, &fenv, "gm");

  GraphRegistry registry(&fenv);
  SchedulerOptions scheduler_options;
  scheduler_options.workers = 4;
  scheduler_options.max_queue = 256;
  scheduler_options.enable_result_cache = false;
  QueryScheduler scheduler(&registry, scheduler_options);
  ASSERT_TRUE(scheduler.LoadGraph("g", path).ok());

  OptServer server(&scheduler);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.bound_port();
  fenv.set_enabled(true);

  const uint64_t lo = oracle;
  const uint64_t hi = oracle + batch_delta;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> exact{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> dirty_lists{0};
  std::atomic<uint64_t> applied{0};
  std::atomic<uint64_t> degraded_mutations{0};
  std::atomic<int> failures{0};

  // `present` is the mutator's mirror of whether the batch is applied.
  // It lives outside the thread so the post-soak cleanup can restore
  // the graph to its base state.
  bool present = false;
  std::thread mutator([&] {
    OptClient client;
    if (!client.ConnectTcp("127.0.0.1", port).ok()) {
      ++failures;
      return;
    }
    bool retrying = false;
    while (!stop.load(std::memory_order_relaxed)) {
      auto result = present ? client.RemoveEdges("g", batch)
                            : client.AddEdges("g", batch);
      if (result.ok()) {
        const int64_t want =
            present ? -static_cast<int64_t>(batch_delta)
                    : static_cast<int64_t>(batch_delta);
        if (result->batch_triangle_delta != want ||
            (result->total_triangle_delta != 0 &&
             result->total_triangle_delta !=
                 static_cast<int64_t>(batch_delta))) {
          ADD_FAILURE() << "mutation delta mismatch: batch "
                        << result->batch_triangle_delta << " want " << want
                        << ", total " << result->total_triangle_delta;
          ++failures;
        }
        present = !present;
        retrying = false;
        applied.fetch_add(1, std::memory_order_relaxed);
      } else if (result.status().IsUnavailable()) {
        // Contract: the batch was NOT applied. Retry it verbatim; if
        // the server had silently committed it, the retry would come
        // back InvalidArgument (already present / not present) below.
        degraded_mutations.fetch_add(1, std::memory_order_relaxed);
        retrying = true;
      } else {
        ADD_FAILURE() << "unexpected mutation error"
                      << (retrying ? " on verbatim retry (batch silently "
                                     "half-applied?)"
                                   : "")
                      << ": " << result.status().ToString();
        ++failures;
        return;
      }
    }
  });

  constexpr int kReaders = 6;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int c = 0; c < kReaders; ++c) {
    readers.emplace_back([&, c] {
      OptClient client;
      if (!client.ConnectTcp("127.0.0.1", port).ok()) {
        ++failures;
        return;
      }
      uint64_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++q;
        const uint64_t kind = (c + q) % 4;
        if (kind < 2) {
          // Epoch atomicity: a healthy COUNT is one of the two legal
          // states, never a partial batch.
          auto result = client.Count("g");
          if (result.ok()) {
            if (result->triangles != lo && result->triangles != hi) {
              ADD_FAILURE() << "COUNT observed half-applied batch: "
                            << result->triangles << " not in {" << lo << ", "
                            << hi << "}";
              ++failures;
            } else {
              exact.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (result.status().IsUnavailable()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected COUNT error: "
                          << result.status().ToString();
            ++failures;
          }
        } else if (kind == 2) {
          // LIST serves the pinned base store: exact T0 when the
          // overlay was clean at acquire, typed NotSupported while the
          // batch is applied, Unavailable when degraded.
          uint64_t streamed = 0;
          auto end = client.List("g", [&](const ListBatch& b) {
            for (const auto& record : b.records) {
              streamed += record.ws.size();
            }
          });
          if (end.ok()) {
            if (end->triangles != oracle || streamed != oracle) {
              ADD_FAILURE() << "wrong LIST: trailer " << end->triangles
                            << " streamed " << streamed << " != " << oracle;
              ++failures;
            } else {
              exact.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (end.status().code() == StatusCode::kNotSupported) {
            dirty_lists.fetch_add(1, std::memory_order_relaxed);
          } else if (end.status().IsUnavailable()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected LIST error: "
                          << end.status().ToString();
            ++failures;
          }
        } else {
          // Snapshot long-poll: the registry's delta state must be one
          // of the two legal batch states too.
          auto snap = client.SubscribeCount("g", 0, 0);
          if (snap.ok()) {
            if (snap->delta_triangles != 0 &&
                snap->delta_triangles != static_cast<int64_t>(batch_delta)) {
              ADD_FAILURE() << "SUBSCRIBE observed half-applied batch: delta "
                            << snap->delta_triangles;
              ++failures;
            } else if (snap->exact_known &&
                       snap->triangles != lo && snap->triangles != hi) {
              ADD_FAILURE() << "SUBSCRIBE total not a legal state: "
                            << snap->triangles;
              ++failures;
            }
          } else if (snap.status().IsUnavailable()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected SUBSCRIBE error: "
                          << snap.status().ToString();
            ++failures;
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(SoakSeconds()));
  stop.store(true, std::memory_order_relaxed);
  // Join IS the no-deadlock assertion.
  mutator.join();
  for (auto& t : readers) t.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(applied.load(), 0u) << "soak applied no mutations";
  EXPECT_GT(exact.load(), 0u) << "soak produced no successful reads";
  std::fprintf(stderr,
               "streaming chaos soak: %llu mutations (%llu degraded), "
               "%llu exact reads, %llu degraded reads, %llu dirty LISTs, "
               "%llu injected read errors, %llu torn\n",
               static_cast<unsigned long long>(applied.load()),
               static_cast<unsigned long long>(degraded_mutations.load()),
               static_cast<unsigned long long>(exact.load()),
               static_cast<unsigned long long>(degraded.load()),
               static_cast<unsigned long long>(dirty_lists.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_read_errors.load()),
               static_cast<unsigned long long>(
                   fenv.stats().injected_torn_reads.load()));

  // Restore to base state with injection off and recheck exactly: the
  // overlay drains to empty and the count returns to the oracle.
  fenv.set_enabled(false);
  if (present) {
    const MutationResult cleanup =
        scheduler.ApplyDelta("g", DeltaKind::kRemove, batch);
    ASSERT_TRUE(cleanup.status.ok()) << cleanup.status.ToString();
  }
  QuerySpec spec;
  spec.graph = "g";
  const QueryResult final_check = scheduler.Run(spec);
  ASSERT_TRUE(final_check.status.ok()) << final_check.status.ToString();
  EXPECT_EQ(final_check.triangles, oracle);
}

}  // namespace
}  // namespace opt
