// Tests for the bench-regression gate (obs/bench_gate) and the JSON
// parser under it (util/json): format auto-detection across the three
// baseline flavors, tolerance/margin semantics, best-of-N, and the
// host-fingerprint downgrade for host-dependent metrics.
#include <gtest/gtest.h>

#include "obs/bench_gate.h"
#include "util/json.h"

namespace opt {
namespace {

// ---------------------------------------------------------------- json

TEST(Json, ParsesScalarsObjectsAndArrays) {
  auto v = JsonValue::Parse(
      R"({"s":"a\"b","n":-2.5,"i":42,"t":true,"f":false,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Get("s").AsString(), "a\"b");
  EXPECT_DOUBLE_EQ(v->Get("n").AsDouble(), -2.5);
  EXPECT_EQ(v->Get("i").AsInt(), 42);
  EXPECT_TRUE(v->Get("t").AsBool());
  EXPECT_FALSE(v->Get("f").AsBool());
  EXPECT_TRUE(v->Get("z").is_null());
  ASSERT_EQ(v->Get("arr").items().size(), 3u);
  EXPECT_EQ(v->Get("arr").items()[2].AsInt(), 3);
  EXPECT_EQ(v->Get("obj").Get("k").AsString(), "v");
  // Missing keys read as null, recursively.
  EXPECT_TRUE(v->Get("missing").Get("deeper").is_null());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("01").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("{}trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("").ok());
}

TEST(Json, EscapesAndWhitespace) {
  auto v = JsonValue::Parse(" {\n\t\"k\" : \"a\\n\\t\\\\b\\u0041\" } ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("k").AsString(), "a\n\t\\bA");
}

// ----------------------------------------------------- format detection

constexpr char kUnified[] = R"({
  "schema_version": 1,
  "experiment": "ablation_overlap",
  "host": {"hostname":"ci-box","nproc":8,"machine":"x86_64"},
  "perf_backend": "perf_event_sw",
  "rows": [
    {"config":"opt_serial","seconds":0.10,"micro_overlap":0.80,
     "profiler_overhead_frac":0.01},
    {"config":"opt_full","seconds":0.08,"micro_overlap":0.65,
     "profiler_overhead_frac":0.02}
  ]
})";

TEST(BenchRunParse, UnifiedSchema) {
  auto run = ParseBenchRun(kUnified);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->schema_version, 1);
  EXPECT_EQ(run->experiment, "ablation_overlap");
  EXPECT_EQ(run->perf_backend, "perf_event_sw");
  EXPECT_EQ(run->host.Fingerprint(), "ci-box/8/x86_64");
  ASSERT_EQ(run->rows.size(), 2u);
  EXPECT_EQ(run->rows[0].Get("config").AsString(), "opt_serial");
}

TEST(BenchRunParse, LegacyBareArray) {
  auto run = ParseBenchRun(
      R"([{"config":"opt_serial","seconds":0.1,"micro_overlap":0.8}])");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->schema_version, 0);
  EXPECT_EQ(run->experiment, "ablation_overlap");  // inferred from "config"
  EXPECT_EQ(run->host.Fingerprint(), "");          // legacy: no host info
  ASSERT_EQ(run->rows.size(), 1u);
}

TEST(BenchRunParse, LegacyArrayWithExplicitExperiment) {
  auto run = ParseBenchRun(
      R"([{"experiment":"shard_throughput","shards":2,"qps":10.0}])");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->experiment, "shard_throughput");
}

TEST(BenchRunParse, GoogleBenchmarkFormat) {
  auto run = ParseBenchRun(R"({
    "context": {"host_name":"vm","num_cpus":4},
    "benchmarks": [
      {"name":"BM_A/1","run_type":"iteration","items_per_second":100.0},
      {"name":"BM_A/1","run_type":"aggregate","items_per_second":95.0},
      {"name":"BM_B/2","items_per_second":50.0}
    ]
  })");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->experiment, "gbench");
  ASSERT_EQ(run->rows.size(), 2u);  // aggregate row skipped
  EXPECT_EQ(run->host.hostname, "vm");
}

TEST(BenchRunParse, RejectsUnrecognizedShape) {
  EXPECT_FALSE(ParseBenchRun(R"({"rows":[]})").ok());
  EXPECT_FALSE(ParseBenchRun("3").ok());
}

// -------------------------------------------------------------- gating

BenchRun Doctor(const std::string& base_text, const std::string& from,
                const std::string& to) {
  std::string text = base_text;
  const size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  auto run = ParseBenchRun(text);
  EXPECT_TRUE(run.ok());
  return *run;
}

TEST(BenchGate, IdenticalRunsPass) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  auto report = CompareBenchRuns(*base, {*base}, GateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->regressions, 0);
  EXPECT_TRUE(report->same_host);
  // Every row×metric in the spec produced a verdict line.
  EXPECT_EQ(report->rows.size(), 6u);
}

TEST(BenchGate, DoctoredInvariantMetricFails) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  // micro_overlap collapsing 0.80 → 0.20 is far past the 35% rel
  // tolerance and must gate even though seconds are untouched.
  BenchRun fresh = Doctor(kUnified, "\"micro_overlap\":0.80",
                          "\"micro_overlap\":0.20");
  auto report = CompareBenchRuns(*base, {fresh}, GateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(report->regressions, 1);
}

TEST(BenchGate, RegressionWithinTolerancePasses) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  // 0.80 → 0.70 is a 12.5% drop, inside the 35% rel tolerance.
  BenchRun fresh = Doctor(kUnified, "\"micro_overlap\":0.80",
                          "\"micro_overlap\":0.70");
  auto report = CompareBenchRuns(*base, {fresh}, GateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

TEST(BenchGate, ToleranceOverrideTightensTheGate) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  BenchRun fresh = Doctor(kUnified, "\"micro_overlap\":0.80",
                          "\"micro_overlap\":0.70");
  GateOptions opts;
  opts.tolerance_override["micro_overlap"] = 0.05;  // now 12.5% > 5%
  auto report = CompareBenchRuns(*base, {fresh}, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST(BenchGate, HostMismatchDowngradesHostDependentMetrics) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  // Different host + seconds 100x worse: seconds is host-dependent, so
  // the regression is informational — the invariant metrics still gate.
  auto slow_run = ParseBenchRun(R"({
  "schema_version": 1,
  "experiment": "ablation_overlap",
  "host": {"hostname":"laptop","nproc":2,"machine":"arm64"},
  "rows": [
    {"config":"opt_serial","seconds":9.99,"micro_overlap":0.80,
     "profiler_overhead_frac":0.01},
    {"config":"opt_full","seconds":9.99,"micro_overlap":0.65,
     "profiler_overhead_frac":0.02}
  ]
})");
  ASSERT_TRUE(slow_run.ok());
  const BenchRun& slow = *slow_run;
  auto report = CompareBenchRuns(*base, {slow}, GateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->same_host);
  EXPECT_TRUE(report->ok());  // slow seconds not gated across hosts
  bool saw_info_seconds = false;
  for (const auto& r : report->rows) {
    if (r.metric == "seconds" && r.verdict == GateVerdict::kInfo) {
      saw_info_seconds = true;
      EXPECT_FALSE(r.enforced);
    }
  }
  EXPECT_TRUE(saw_info_seconds);

  // --strict_host turns the same comparison into a failure.
  GateOptions strict;
  strict.strict_host = true;
  auto strict_report = CompareBenchRuns(*base, {slow}, strict);
  ASSERT_TRUE(strict_report.ok());
  EXPECT_FALSE(strict_report->ok());
}

TEST(BenchGate, BestOfNTakesTheMostFavorableFreshValue) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  BenchRun bad = Doctor(kUnified, "\"micro_overlap\":0.80",
                        "\"micro_overlap\":0.10");
  BenchRun good = Doctor(kUnified, "\"micro_overlap\":0.80",
                         "\"micro_overlap\":0.79");
  // One noisy run plus one healthy run: best-of-2 passes.
  auto report = CompareBenchRuns(*base, {bad, good}, GateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  // The noisy run alone fails.
  auto solo = CompareBenchRuns(*base, {bad}, GateOptions{});
  ASSERT_TRUE(solo.ok());
  EXPECT_FALSE(solo->ok());
}

TEST(BenchGate, MissingRowFailsUnlessAllowed) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  auto fresh = ParseBenchRun(R"({
    "schema_version": 1,
    "experiment": "ablation_overlap",
    "host": {"hostname":"ci-box","nproc":8,"machine":"x86_64"},
    "rows": [
      {"config":"opt_serial","seconds":0.10,"micro_overlap":0.80,
       "profiler_overhead_frac":0.01}
    ]
  })");
  ASSERT_TRUE(fresh.ok());
  auto report = CompareBenchRuns(*base, {*fresh}, GateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_GT(report->missing, 0);

  GateOptions allow;
  allow.allow_missing = true;
  auto lax = CompareBenchRuns(*base, {*fresh}, allow);
  ASSERT_TRUE(lax.ok());
  EXPECT_TRUE(lax->ok());
}

TEST(BenchGate, ExperimentMismatchIsAnError) {
  auto base = ParseBenchRun(kUnified);
  auto other = ParseBenchRun(
      R"([{"experiment":"shard_throughput","shards":2,"qps":10.0}])");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(CompareBenchRuns(*base, {*other}, GateOptions{}).ok());
}

TEST(BenchGate, ImprovementIsReportedNotFailed) {
  auto base = ParseBenchRun(kUnified);
  ASSERT_TRUE(base.ok());
  // profiler_overhead_frac (lower is better) has margin
  // max(1.0·0.01, 0.04) = 0.04; dropping to −0.5 clears it decisively.
  BenchRun fast = Doctor(kUnified, "\"profiler_overhead_frac\":0.01",
                         "\"profiler_overhead_frac\":-0.5");
  auto report = CompareBenchRuns(*base, {fast}, GateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  bool saw_improved = false;
  for (const auto& r : report->rows) {
    saw_improved |= r.verdict == GateVerdict::kImproved;
  }
  EXPECT_TRUE(saw_improved);
}

TEST(BenchGate, SpecsExistForRepoExperiments) {
  EXPECT_FALSE(SpecForExperiment("ablation_overlap").metrics.empty());
  EXPECT_FALSE(SpecForExperiment("shard_throughput").metrics.empty());
  EXPECT_FALSE(SpecForExperiment("service_throughput").metrics.empty());
  EXPECT_FALSE(SpecForExperiment("gbench").metrics.empty());
  // Unknown experiments still gate wall time, keyed on config/method.
  GateSpec spec = SpecForExperiment("something_new");
  ASSERT_EQ(spec.metrics.size(), 1u);
  EXPECT_EQ(spec.metrics[0].metric, "seconds");
}

}  // namespace
}  // namespace opt
