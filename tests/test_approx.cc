// Statistical tests for the approximate counting baselines (Doulion,
// wedge sampling): unbiasedness within tolerance, degenerate inputs,
// determinism per seed.
#include <gtest/gtest.h>

#include "baselines/approx.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "test_helpers.h"

namespace opt {
namespace {

TEST(DoulionTest, KeepAllIsExact) {
  CSRGraph g = GenerateErdosRenyi(300, 3000, 5);
  ApproxResult result = DoulionEstimate(g, 1.0, 1);
  EXPECT_DOUBLE_EQ(result.estimate,
                   static_cast<double>(testutil::OracleCount(g)));
  EXPECT_EQ(result.work, g.num_edges());
}

TEST(DoulionTest, EstimateWithinToleranceAveragedOverSeeds) {
  CSRGraph g = GenerateHolmeKim({.num_vertices = 2000,
                                 .edges_per_vertex = 6,
                                 .triad_probability = 0.6,
                                 .seed = 11});
  const double exact = static_cast<double>(testutil::OracleCount(g));
  double sum = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    sum += DoulionEstimate(g, 0.5, 100 + t).estimate;
  }
  const double mean = sum / kTrials;
  EXPECT_NEAR(mean / exact, 1.0, 0.15);
}

TEST(DoulionTest, SparsificationReducesWork) {
  CSRGraph g = GenerateErdosRenyi(500, 8000, 6);
  ApproxResult full = DoulionEstimate(g, 1.0, 2);
  ApproxResult sparse = DoulionEstimate(g, 0.25, 2);
  EXPECT_LT(sparse.work, full.work / 2);
}

TEST(DoulionTest, EmptyGraph) {
  CSRGraph g = GraphBuilder::FromEdges({});
  EXPECT_DOUBLE_EQ(DoulionEstimate(g, 0.5, 1).estimate, 0.0);
}

TEST(WedgeSamplingTest, EstimateWithinTolerance) {
  CSRGraph g = GenerateHolmeKim({.num_vertices = 2000,
                                 .edges_per_vertex = 6,
                                 .triad_probability = 0.6,
                                 .seed = 13});
  const double exact = static_cast<double>(testutil::OracleCount(g));
  ApproxResult result = WedgeSamplingEstimate(g, 200000, 7);
  EXPECT_NEAR(result.estimate / exact, 1.0, 0.1);
}

TEST(WedgeSamplingTest, ExactOnTriangle) {
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {1, 2}, {0, 2}});
  // Every wedge is closed, so any sample size gives exactly 1.
  ApproxResult result = WedgeSamplingEstimate(g, 100, 3);
  EXPECT_DOUBLE_EQ(result.estimate, 1.0);
}

TEST(WedgeSamplingTest, ZeroOnTriangleFree) {
  GraphBuilder b;
  for (VertexId v = 0; v + 1 < 50; ++v) b.AddEdge(v, v + 1);
  ApproxResult result =
      WedgeSamplingEstimate(std::move(b).Build(), 1000, 4);
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);
}

TEST(WedgeSamplingTest, NoWedgesNoCrash) {
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}});  // single edge
  EXPECT_DOUBLE_EQ(WedgeSamplingEstimate(g, 100, 1).estimate, 0.0);
}

TEST(ApproxTest, DeterministicPerSeed) {
  CSRGraph g = GenerateErdosRenyi(400, 5000, 9);
  EXPECT_DOUBLE_EQ(DoulionEstimate(g, 0.3, 42).estimate,
                   DoulionEstimate(g, 0.3, 42).estimate);
  EXPECT_DOUBLE_EQ(WedgeSamplingEstimate(g, 5000, 42).estimate,
                   WedgeSamplingEstimate(g, 5000, 42).estimate);
}

}  // namespace
}  // namespace opt
