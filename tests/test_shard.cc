// Sharded serving tests: partition planning, manifest round trips, the
// sharded wire extensions, multi-process COUNT/LIST/mutation routing
// through a real QueryRouter over real opt_server children, shard-kill
// chaos with partial_shards masks, and the connect-retry path.
//
// The sanitize/tsan presets build no tools, so this binary is its own
// shard server: when launched as `test_shard --shard-server-child ...`
// main() skips googletest and runs a minimal opt_server clone (same
// registry/scheduler/OptServer stack, same "listening on
// 127.0.0.1:<port>" stdout line ShardSet parses).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "distsim/distributed.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "graph/csr_graph.h"
#include "service/client.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "service/server.h"
#include "service/wire.h"
#include "shard/router.h"
#include "shard/shard_plan.h"
#include "shard/shard_set.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "storage/record_scanner.h"
#include "util/cli.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "test_helpers.h"

namespace opt {
namespace {

using testutil::OracleCount;
using testutil::OracleTriangles;
using testutil::ProcessTempDir;

std::string SelfExe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(n, 0);
  buf[n > 0 ? n : 0] = '\0';
  return buf;
}

/// Reconstructs the in-memory graph a shard store holds.
CSRGraph LoadStoreAsCSR(Env* env, const std::string& base_path) {
  auto store = GraphStore::Open(env, base_path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  std::vector<Edge> edges;
  Status s = ScanRecords(**store, 0, (*store)->num_pages() - 1,
                         [&](VertexId u, std::span<const VertexId> n) {
                           for (VertexId v : n) {
                             if (v > u) edges.emplace_back(u, v);
                           }
                         });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return GraphBuilder::FromEdges(std::move(edges));
}

/// Partitions `g` under a unique temp prefix and returns the manifest.
ShardManifest MakePlan(const CSRGraph& g, uint32_t shards,
                       const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string prefix = ProcessTempDir() + "/shard_" + tag + "_" +
                             std::to_string(counter.fetch_add(1));
  ShardPlanOptions options;
  options.num_shards = shards;
  options.page_size = 256;
  auto manifest = PartitionGraph(g, Env::Default(), "g", prefix, options);
  EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
  return *manifest;
}

/// The AKM range rule from distsim, replicated inline: the executable
/// model the partitioner must agree with (promoted simulation).
std::vector<VertexId> AkmRangeEnds(const CSRGraph& g, uint32_t nodes) {
  const uint64_t share =
      std::max<uint64_t>(1, g.num_directed_edges() / nodes);
  std::vector<VertexId> ends;
  uint64_t acc = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    acc += g.degree(v);
    if (acc >= share && ends.size() + 1 < nodes) {
      ends.push_back(v + 1);
      acc = 0;
    }
  }
  while (ends.size() < nodes) ends.push_back(g.num_vertices());
  return ends;
}

// ---------------------------------------------------------------------
// Partition planning
// ---------------------------------------------------------------------

TEST(ShardPlan, RangeEndsMatchTheAkmSimulatorRule) {
  RmatOptions rmat;
  rmat.scale = 9;
  rmat.edge_factor = 8;
  rmat.seed = 11;
  const CSRGraph g = GenerateRmat(rmat);
  for (uint32_t n : {1u, 2u, 4u, 8u, 31u}) {
    EXPECT_EQ(ComputeRangeEnds(g, n), AkmRangeEnds(g, n)) << n;
  }
}

TEST(ShardPlan, RangesCoverEveryVertexContiguously) {
  const CSRGraph g = GenerateErdosRenyi(500, 2000, 3);
  for (uint32_t n : {1u, 3u, 7u}) {
    const std::vector<VertexId> ends = ComputeRangeEnds(g, n);
    ASSERT_EQ(ends.size(), n);
    EXPECT_EQ(ends.back(), g.num_vertices());
    for (size_t i = 1; i < ends.size(); ++i) {
      EXPECT_LE(ends[i - 1], ends[i]);
    }
  }
}

TEST(ShardPlan, MergedCountIsExactAcrossGraphFamiliesAndShardCounts) {
  RmatOptions rmat;
  rmat.scale = 9;
  rmat.edge_factor = 8;
  rmat.seed = 5;
  HolmeKimOptions hk;
  hk.num_vertices = 400;
  hk.edges_per_vertex = 4;
  hk.triad_probability = 0.4;
  hk.seed = 9;
  const CSRGraph graphs[] = {GenerateErdosRenyi(600, 4000, 17),
                             GenerateRmat(rmat), GenerateHolmeKim(hk)};
  Env* env = Env::Default();
  int tag = 0;
  for (const CSRGraph& g : graphs) {
    const uint64_t truth = OracleCount(g);
    for (uint32_t shards : {2u, 3u, 5u}) {
      const ShardManifest manifest =
          MakePlan(g, shards, "exact" + std::to_string(tag++));
      uint64_t merged = 0;
      uint64_t owned_edges = 0;
      for (const ShardInfo& info : manifest.shards) {
        const CSRGraph local = LoadStoreAsCSR(env, info.base_path);
        merged += OracleCount(local) - info.ghost_triangles;
        owned_edges += info.owned_edges;
      }
      EXPECT_EQ(merged, truth) << "shards=" << shards;
      EXPECT_EQ(owned_edges, g.num_edges());
    }
  }
}

TEST(ShardPlan, OwnershipFilteredListsUnionToTheGlobalTriangleSet) {
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edge_factor = 8;
  rmat.seed = 23;
  const CSRGraph g = GenerateRmat(rmat);
  const std::vector<Triangle> truth = OracleTriangles(g);
  const ShardManifest manifest = MakePlan(g, 4, "listset");
  std::vector<Triangle> merged;
  for (const ShardInfo& info : manifest.shards) {
    const CSRGraph local = LoadStoreAsCSR(Env::Default(), info.base_path);
    for (const Triangle& t : OracleTriangles(local)) {
      // The router's rule: keep a triangle only on the shard owning its
      // minimum vertex; everything else is a ghost duplicate.
      if (t.u >= info.range_lo && t.u < info.range_hi) {
        merged.push_back(t);
      }
    }
  }
  std::sort(merged.begin(), merged.end());
  ASSERT_EQ(merged.size(), truth.size());
  EXPECT_TRUE(std::equal(merged.begin(), merged.end(), truth.begin()));
}

TEST(ShardPlan, OwnerOfRoutesEveryVertexAndClampsPastTheEnd) {
  const CSRGraph g = GenerateErdosRenyi(200, 900, 8);
  const ShardManifest manifest = MakePlan(g, 3, "owner");
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const uint32_t owner = manifest.OwnerOf(v);
    ASSERT_LT(owner, manifest.num_shards());
    EXPECT_GE(v, manifest.shards[owner].range_lo);
    EXPECT_LT(v, manifest.shards[owner].range_hi);
  }
  EXPECT_EQ(manifest.OwnerOf(g.num_vertices() + 100),
            manifest.num_shards() - 1);
  EXPECT_EQ(manifest.OwnerOfEdge(5, 2), manifest.OwnerOf(2));
}

TEST(ShardPlan, ManifestSurvivesToStringParseAndSaveLoad) {
  const CSRGraph g = GenerateErdosRenyi(300, 1500, 4);
  const ShardManifest manifest = MakePlan(g, 4, "roundtrip");
  auto parsed = ShardManifest::Parse(manifest.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph, manifest.graph);
  EXPECT_EQ(parsed->num_vertices, manifest.num_vertices);
  EXPECT_EQ(parsed->num_edges, manifest.num_edges);
  ASSERT_EQ(parsed->num_shards(), manifest.num_shards());
  for (uint32_t i = 0; i < manifest.num_shards(); ++i) {
    EXPECT_EQ(parsed->shards[i].range_lo, manifest.shards[i].range_lo);
    EXPECT_EQ(parsed->shards[i].range_hi, manifest.shards[i].range_hi);
    EXPECT_EQ(parsed->shards[i].ghost_triangles,
              manifest.shards[i].ghost_triangles);
    EXPECT_EQ(parsed->shards[i].base_path, manifest.shards[i].base_path);
  }
  const std::string path = ProcessTempDir() + "/manifest_rt";
  ASSERT_TRUE(manifest.Save(path).ok());
  auto loaded = ShardManifest::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToString(), manifest.ToString());
}

TEST(ShardPlan, ParseRejectsCorruptManifests) {
  const CSRGraph g = GenerateErdosRenyi(100, 400, 2);
  const ShardManifest manifest = MakePlan(g, 2, "corrupt");
  const std::string good = manifest.ToString();
  EXPECT_FALSE(ShardManifest::Parse("not a manifest").ok());
  // Drop the last shard line: count mismatch.
  std::string truncated = good;
  truncated.erase(truncated.rfind("shard "));
  EXPECT_FALSE(ShardManifest::Parse(truncated).ok());
  // A gap in the ranges.
  std::string gapped = good;
  const size_t pos = gapped.rfind("shard ");
  gapped.replace(pos, 7, "shard 9");
  EXPECT_FALSE(ShardManifest::Parse(gapped).ok());
}

TEST(ShardPlan, PromotedAkmSimulationStaysExactAndClosureBeatsSurrogates) {
  RmatOptions rmat;
  rmat.scale = 9;
  rmat.edge_factor = 8;
  rmat.seed = 31;
  const CSRGraph g = GenerateRmat(rmat);
  DistSimOptions options;
  options.nodes = 4;
  auto akm = SimulateAKM(g, options);
  ASSERT_TRUE(akm.ok()) << akm.status().ToString();
  // The simulator this partitioner was modeled on must itself be exact…
  EXPECT_EQ(akm->triangles, OracleCount(g));
  // …and the closure-edge replication the real shards carry must move
  // no more bytes than AKM's surrogate adjacency lists for the same
  // node count and identical vertex ranges.
  const ShardManifest manifest = MakePlan(g, 4, "akm");
  EXPECT_LE(manifest.replicated_bytes(), akm->shuffle_bytes);
}

// ---------------------------------------------------------------------
// Wire extensions
// ---------------------------------------------------------------------

TEST(ShardWire, ShardStatsResultRoundTrips) {
  ShardStatsResult stats;
  stats.graph = "web";
  for (uint32_t i = 0; i < 2; ++i) {
    ShardStatsEntry entry;
    entry.id = i;
    entry.address = "127.0.0.1:" + std::to_string(7000 + i);
    entry.healthy = i == 0;
    entry.pid = 4242 + i;
    entry.range_lo = i * 100;
    entry.range_hi = (i + 1) * 100;
    entry.epoch = 17 * (i + 1);
    entry.restarts = i;
    entry.requests = 1000 + i;
    entry.failures = i;
    entry.retries = 3 * i;
    entry.ghost_triangles = 7 + i;
    entry.latency_p50_micros = 120.5;
    entry.latency_p95_micros = 800.25;
    entry.latency_p99_micros = 1500.75;
    stats.shards.push_back(entry);
  }
  ShardStatsResult decoded;
  ASSERT_TRUE(
      DecodeShardStatsResult(EncodeShardStatsResult(stats), &decoded).ok());
  EXPECT_EQ(decoded.graph, "web");
  ASSERT_EQ(decoded.shards.size(), 2u);
  EXPECT_EQ(decoded.shards[1].address, "127.0.0.1:7001");
  EXPECT_EQ(decoded.shards[1].epoch, 34u);
  EXPECT_EQ(decoded.shards[0].healthy, 1);
  EXPECT_DOUBLE_EQ(decoded.shards[1].latency_p99_micros, 1500.75);
}

TEST(ShardWire, ShardStatsDecoderBoundsHostileCounts) {
  std::string payload;
  PutString(&payload, "g");
  PutU32(&payload, 0x00FFFFFFu);  // claims 16M entries, carries none
  ShardStatsResult out;
  EXPECT_TRUE(DecodeShardStatsResult(payload, &out).IsCorruption());
}

TEST(ShardWire, ResultTailsRoundTripAndOldFramesDecodeAsComplete) {
  // New encoder → new decoder: the mask survives.
  CountResult count;
  count.triangles = 99;
  count.partial_shards = 0b101;
  count.num_shards = 3;
  CountResult count2;
  ASSERT_TRUE(DecodeCountResult(EncodeCountResult(count), &count2).ok());
  EXPECT_EQ(count2.partial_shards, 0b101u);
  EXPECT_EQ(count2.num_shards, 3u);

  // Old frame (no 12-byte router tail) → new decoder: mask zero, i.e. a
  // complete unsharded answer. The tail is always the trailing
  // PutU64+PutU32, so truncating it reproduces a pre-shard frame.
  const std::string old_frame =
      EncodeCountResult(count).substr(0, EncodeCountResult(count).size() - 12);
  CountResult count3;
  ASSERT_TRUE(DecodeCountResult(old_frame, &count3).ok());
  EXPECT_EQ(count3.triangles, 99u);
  EXPECT_EQ(count3.partial_shards, 0u);
  EXPECT_EQ(count3.num_shards, 0u);

  MutateResult mutate;
  mutate.epoch = 7;
  mutate.partial_shards = 0b10;
  mutate.num_shards = 2;
  const std::string mutate_payload = EncodeMutateResult(mutate);
  MutateResult mutate2;
  ASSERT_TRUE(DecodeMutateResult(mutate_payload, &mutate2).ok());
  EXPECT_EQ(mutate2.partial_shards, 0b10u);
  MutateResult mutate3;
  ASSERT_TRUE(DecodeMutateResult(
                  mutate_payload.substr(0, mutate_payload.size() - 12),
                  &mutate3)
                  .ok());
  EXPECT_EQ(mutate3.epoch, 7u);
  EXPECT_EQ(mutate3.partial_shards, 0u);

  SubscribeCountResult sub;
  sub.epoch = 3;
  sub.partial_shards = 1;
  sub.num_shards = 4;
  const std::string sub_payload = EncodeSubscribeCountResult(sub);
  SubscribeCountResult sub2;
  ASSERT_TRUE(DecodeSubscribeCountResult(sub_payload, &sub2).ok());
  EXPECT_EQ(sub2.num_shards, 4u);
  SubscribeCountResult sub3;
  ASSERT_TRUE(DecodeSubscribeCountResult(
                  sub_payload.substr(0, sub_payload.size() - 12), &sub3)
                  .ok());
  EXPECT_EQ(sub3.partial_shards, 0u);

  ListEnd end;
  end.triangles = 12;
  end.partial_shards = 0b1000;
  end.num_shards = 4;
  const std::string end_payload = EncodeListEnd(end);
  ListEnd end2;
  ASSERT_TRUE(DecodeListEnd(end_payload, &end2).ok());
  EXPECT_EQ(end2.partial_shards, 0b1000u);
  ListEnd end3;
  ASSERT_TRUE(
      DecodeListEnd(end_payload.substr(0, end_payload.size() - 12), &end3)
          .ok());
  EXPECT_EQ(end3.triangles, 12u);
  EXPECT_EQ(end3.num_shards, 0u);
}

// ---------------------------------------------------------------------
// Multi-process integration
// ---------------------------------------------------------------------

/// Spawns `shards` self-exec server children over a fresh partition of
/// `g` plus a router, and tears everything down on destruction.
class RouterHarness {
 public:
  RouterHarness(const CSRGraph& g, uint32_t shards, const std::string& tag,
                std::vector<std::string> extra_args = {},
                uint32_t probe_interval_ms = 100)
      : manifest_(MakePlan(g, shards, tag)) {
    ShardSetOptions options;
    options.command = {SelfExe(), "--shard-server-child"};
    options.extra_args = std::move(extra_args);
    options.probe_interval_ms = probe_interval_ms;
    shard_set_ = std::make_unique<ShardSet>(manifest_, options);
    Status s = shard_set_->Spawn();
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok()) return;
    EXPECT_TRUE(shard_set_->WaitHealthy(20000));
    RouterOptions router_options;
    router_options.workers = 4;
    router_options.shard_deadline_ms = 20000;
    router_ = std::make_unique<QueryRouter>(shard_set_.get(),
                                            router_options);
    s = router_->ListenTcp(0);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(router_->Start().ok());
    ready_ = true;
  }

  ~RouterHarness() {
    if (router_) router_->Stop();
    if (shard_set_) shard_set_->Stop();
  }

  Status Connect(OptClient* client) {
    return client->ConnectTcp("127.0.0.1", router_->bound_port());
  }

  const ShardManifest& manifest() const { return manifest_; }
  ShardSet& shards() { return *shard_set_; }
  bool ready() const { return ready_; }

 private:
  ShardManifest manifest_;
  std::unique_ptr<ShardSet> shard_set_;
  std::unique_ptr<QueryRouter> router_;
  bool ready_ = false;
};

TEST(ShardService, FourProcessMergedCountAndListMatchSingleProcessTruth) {
  RmatOptions rmat;
  rmat.scale = 9;
  rmat.edge_factor = 8;
  rmat.seed = 77;
  const CSRGraph g = GenerateRmat(rmat);
  const uint64_t truth = OracleCount(g);
  const std::vector<Triangle> truth_list = OracleTriangles(g);

  RouterHarness harness(g, 4, "mp4");
  ASSERT_TRUE(harness.ready());
  OptClient client;
  ASSERT_TRUE(harness.Connect(&client).ok());

  auto count = client.Count("g");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->triangles, truth);
  EXPECT_EQ(count->num_shards, 4u);
  EXPECT_EQ(count->partial_shards, 0u);

  // Shards stream in id order, so every record's root vertex must fall
  // in a non-decreasing shard range (the stream within a shard follows
  // the server's own batch order); the merged set must be exactly the
  // global triangle list.
  std::vector<Triangle> listed;
  uint32_t last_shard = 0;
  bool shard_ordered = true;
  auto end = client.List("g", [&](const ListBatch& batch) {
    for (const ListBatch::Record& record : batch.records) {
      const uint32_t shard = harness.manifest().OwnerOf(record.u);
      if (shard < last_shard) shard_ordered = false;
      last_shard = shard;
      for (VertexId w : record.ws) {
        listed.push_back(Triangle{record.u, record.v, w});
      }
    }
  });
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_EQ(end->triangles, truth);
  EXPECT_EQ(end->partial_shards, 0u);
  EXPECT_TRUE(shard_ordered);
  std::sort(listed.begin(), listed.end());
  ASSERT_EQ(listed.size(), truth_list.size());
  EXPECT_TRUE(
      std::equal(listed.begin(), listed.end(), truth_list.begin()));

  // Unknown graph names fail with the serving graph spelled out.
  auto wrong = client.Count("nope");
  EXPECT_TRUE(wrong.status().IsNotFound());

  // SHARD_STATS reports four healthy shards covering the vertex space.
  auto stats = client.ShardStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->shards.size(), 4u);
  for (const ShardStatsEntry& entry : stats->shards) {
    EXPECT_EQ(entry.healthy, 1) << entry.id;
    EXPECT_NE(entry.pid, 0u);
  }
  EXPECT_EQ(stats->shards.back().range_hi, g.num_vertices());
}

TEST(ShardService, TracedCountAssemblesOneTreeAcrossRouterAndShards) {
  // The acceptance path for distributed tracing: a traced COUNT through
  // a 4-shard router must yield ONE merged trace where the router's
  // rpc.count spans parent each shard's query.count span under a single
  // trace id, and AssembleTrace renders it as valid Perfetto JSON with
  // cross-process flow arrows.
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edge_factor = 8;
  rmat.seed = 99;
  const CSRGraph g = GenerateRmat(rmat);
  const uint64_t truth = OracleCount(g);

  RouterHarness harness(g, 4, "trace");
  ASSERT_TRUE(harness.ready());

  // This test process is the router process; give it its own recorder.
  TraceRecorder recorder;
  StartTracing(&recorder);

  OptClient client;
  ASSERT_TRUE(harness.Connect(&client).ok());
  const uint64_t trace_id = NewTraceId();
  ASSERT_NE(trace_id, 0u);
  {
    TraceContextScope scope({trace_id, 0});
    auto count = client.Count("g");
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(count->triangles, truth);
    EXPECT_EQ(count->partial_shards, 0u);
  }

  // One pull at the front door drains the whole fleet: the router's
  // section plus one per shard child.
  auto pulled = client.TracePull(/*drain=*/true);
  StopTracing();
  ASSERT_TRUE(pulled.ok()) << pulled.status().ToString();
  ASSERT_GE(pulled->processes.size(), 5u);

  const uint64_t router_pid = static_cast<uint64_t>(::getpid());
  std::set<uint64_t> pids_in_trace;
  std::set<uint64_t> rpc_span_ids;      // router-side per-shard spans
  uint64_t router_span_id = 0;          // the request's root span
  size_t shard_query_spans = 0;
  size_t linked_shard_spans = 0;
  for (const ProcessTrace& section : pulled->processes) {
    for (const TraceEvent& event : section.events) {
      if (event.trace_id != trace_id) continue;
      pids_in_trace.insert(section.pid);
      if (section.pid == router_pid) {
        if (event.name == "router.count") router_span_id = event.span_id;
        if (event.name == "rpc.count") rpc_span_ids.insert(event.span_id);
      } else if (event.name == "query.count") {
        ++shard_query_spans;
        if (rpc_span_ids.count(event.parent_span_id)) {
          ++linked_shard_spans;
        }
      }
    }
  }
  // Spans from the router AND at least two distinct shard processes
  // share the trace id (all four shards answered a complete COUNT).
  EXPECT_GE(pids_in_trace.size(), 3u);
  EXPECT_TRUE(pids_in_trace.count(router_pid));
  ASSERT_NE(router_span_id, 0u);
  ASSERT_EQ(rpc_span_ids.size(), 4u);
  EXPECT_EQ(shard_query_spans, 4u);
  // Every shard span's remote parent is one of the router's rpc spans.
  EXPECT_EQ(linked_shard_spans, shard_query_spans);

  const std::string json = AssembleTrace(pulled->processes);
  EXPECT_TRUE(testutil::JsonChecker(json).Valid());
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Cross-process parent/child pairs become flow arrows ('s' → 'f').
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

  // The drain emptied every ring: a second pull has no spans from this
  // trace (spans are reported exactly once).
  auto again = client.TracePull(/*drain=*/true);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (const ProcessTrace& section : again->processes) {
    for (const TraceEvent& event : section.events) {
      EXPECT_NE(event.trace_id, trace_id) << event.name;
    }
  }
}

TEST(ShardService, MutationsRouteByEdgeOwnerAndRestoreOnUndo) {
  // Two K5 cliques; degree-balanced ranges split exactly between them,
  // so every edge's triangles are interior to its own shard and the
  // incremental deltas are exact.
  std::vector<Edge> edges;
  for (VertexId base : {0u, 5u}) {
    for (VertexId i = 0; i < 5; ++i) {
      for (VertexId j = i + 1; j < 5; ++j) {
        edges.emplace_back(base + i, base + j);
      }
    }
  }
  const CSRGraph g = GraphBuilder::FromEdges(edges);
  ASSERT_EQ(OracleCount(g), 20u);

  RouterHarness harness(g, 2, "mut");
  ASSERT_TRUE(harness.ready());
  ASSERT_EQ(harness.manifest().shards[0].range_hi, 5u);
  OptClient client;
  ASSERT_TRUE(harness.Connect(&client).ok());

  const uint64_t epoch0 = client.Count("g").ok() ? 0 : 0;  // warm stores
  (void)epoch0;

  // One removal per clique: the batch splits across both shards.
  auto removed = client.RemoveEdges("g", {{0, 1}, {5, 6}});
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed->edges_applied, 2u);
  EXPECT_EQ(removed->batch_triangle_delta, -6);
  EXPECT_EQ(removed->partial_shards, 0u);
  EXPECT_EQ(removed->num_shards, 2u);

  auto count = client.Count("g");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->triangles, 14u);

  // The router's virtual epoch is monotone across the mutation.
  auto snap = client.SubscribeCount("g", 0, 0);
  ASSERT_TRUE(snap.ok());
  EXPECT_GE(snap->epoch, removed->epoch);
  EXPECT_EQ(snap->edges_removed, 2u);

  auto added = client.AddEdges("g", {{0, 1}, {5, 6}});
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added->batch_triangle_delta, 6);
  EXPECT_GT(added->epoch, removed->epoch);

  count = client.Count("g");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->triangles, 20u);

  // Server-side validation still reaches the client typed: adding a
  // present edge is InvalidArgument from the owning shard, and the
  // other shard's sub-batch never splits the difference (all-or-nothing
  // per shard, reported via the mask contract only on transport
  // failures — validation rejections fail the whole request).
  auto dup = client.AddEdges("g", {{0, 1}});
  EXPECT_TRUE(dup.status().IsInvalidArgument());
}

TEST(ShardService, ShardKillChaosSetsTheMaskThenRecovers) {
  RmatOptions rmat;
  rmat.scale = 9;
  rmat.edge_factor = 8;
  rmat.seed = 123;
  const CSRGraph g = GenerateRmat(rmat);
  const uint64_t truth = OracleCount(g);

  RouterHarness harness(g, 4, "chaos", {}, /*probe_interval_ms=*/50);
  ASSERT_TRUE(harness.ready());

  // Per-shard contributions let us check that a masked answer equals
  // the truth minus exactly the dead shard's share.
  std::vector<uint64_t> contribution;
  for (const ShardInfo& info : harness.manifest().shards) {
    const CSRGraph local = LoadStoreAsCSR(Env::Default(), info.base_path);
    contribution.push_back(OracleCount(local) - info.ghost_triangles);
  }

  OptClient client;
  ASSERT_TRUE(harness.Connect(&client).ok());
  ASSERT_EQ(client.Count("g")->triangles, truth);

  const uint32_t victim = 2;
  const uint64_t epoch_before = harness.shards().epoch(victim);
  const pid_t pid = harness.shards().pid(victim);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);

  // Query storm through the kill window: every reply must be either
  // complete and exact, or masked with exactly the victim's bit and
  // short by exactly the victim's contribution.
  bool saw_partial = false;
  for (int i = 0; i < 200; ++i) {
    OptClient storm;
    ASSERT_TRUE(harness.Connect(&storm).ok());
    auto result = storm.Count("g");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->partial_shards != 0) {
      EXPECT_EQ(result->partial_shards, 1ull << victim);
      EXPECT_EQ(result->triangles, truth - contribution[victim]);
      saw_partial = true;
    } else {
      EXPECT_EQ(result->triangles, truth);
    }
    if (saw_partial && result->partial_shards == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // The supervisor must respawn the shard and service must converge
  // back to complete answers.
  bool recovered = false;
  for (int i = 0; i < 400 && !recovered; ++i) {
    auto result = client.Count("g");
    if (result.ok() && result->partial_shards == 0 &&
        result->triangles == truth && harness.shards().healthy(victim)) {
      recovered = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(harness.shards().restarts(victim), 1u);
  EXPECT_GE(harness.shards().total_restarts(), 1u);
  // Restart-monotonic epochs never regress across the respawn.
  EXPECT_GE(harness.shards().epoch(victim), epoch_before);
}

TEST(ShardService, ConnectRetryAbsorbsASlowStartingShard) {
  const CSRGraph g = GenerateErdosRenyi(300, 1500, 41);
  const uint64_t truth = OracleCount(g);
  const ShardManifest manifest = MakePlan(g, 1, "retry");

  // Reserve a port, then attach the shard set to it while nothing is
  // listening yet.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(probe);

  ShardSet shards(manifest, {});
  ASSERT_TRUE(shards.Attach({{"127.0.0.1", port}}).ok());
  RouterOptions options;
  options.connect_retry.max_attempts = 40;
  options.connect_retry.backoff_base_micros = 20000;
  options.connect_retry.backoff_max_micros = 50000;
  QueryRouter router(&shards, options);
  ASSERT_TRUE(router.ListenTcp(0).ok());
  ASSERT_TRUE(router.Start().ok());

  const uint64_t retries_before =
      Metrics().GetCounter("router.retries")->value();

  // Bring the shard up in-process ~200ms after the query starts dialing.
  Env* env = Env::Default();
  GraphRegistry registry(env, {});
  QueryScheduler scheduler(&registry, {});
  ASSERT_TRUE(
      scheduler.LoadGraph("g", manifest.shards[0].base_path).ok());
  OptServer server(&scheduler);
  std::thread late_start([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ASSERT_TRUE(server.ListenTcp(port).ok());
    ASSERT_TRUE(server.Start().ok());
  });

  OptClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", router.bound_port()).ok());
  auto result = client.Count("g");
  late_start.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->triangles, truth);
  EXPECT_EQ(result->partial_shards, 0u);
  // The slow start was absorbed by the bounded backoff loop, and the
  // retries are visible in the metrics registry.
  EXPECT_GT(Metrics().GetCounter("router.retries")->value(),
            retries_before);

  router.Stop();
  shards.Stop();
  server.Stop();
}

TEST(ShardService, SoakStormAcrossRepeatedKills) {
  // Short by default; OPT_SOAK_SECONDS extends it in the nightly lane.
  uint64_t budget_seconds = 2;
  if (const char* env = std::getenv("OPT_SOAK_SECONDS")) {
    budget_seconds = std::strtoull(env, nullptr, 10);
  }
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edge_factor = 8;
  rmat.seed = 99;
  const CSRGraph g = GenerateRmat(rmat);
  const uint64_t truth = OracleCount(g);
  RouterHarness harness(g, 4, "soak", {}, /*probe_interval_ms=*/50);
  ASSERT_TRUE(harness.ready());
  std::vector<uint64_t> contribution;
  for (const ShardInfo& info : harness.manifest().shards) {
    const CSRGraph local = LoadStoreAsCSR(Env::Default(), info.base_path);
    contribution.push_back(OracleCount(local) - info.ghost_triangles);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(budget_seconds);
  uint64_t queries = 0, partials = 0, kills = 0;
  uint32_t victim = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (queries % 40 == 20) {
      const pid_t pid = harness.shards().pid(victim);
      if (pid > 0 && ::kill(pid, SIGKILL) == 0) ++kills;
      victim = (victim + 1) % 4;
    }
    OptClient client;
    ASSERT_TRUE(harness.Connect(&client).ok());
    auto result = client.Count("g");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ++queries;
    uint64_t expected = truth;
    for (uint32_t i = 0; i < 4; ++i) {
      if (result->partial_shards & (1ull << i)) expected -= contribution[i];
    }
    ASSERT_EQ(result->triangles, expected)
        << "mask=" << result->partial_shards;
    if (result->partial_shards != 0) ++partials;
  }
  EXPECT_GT(queries, 0u);
  // Every kill eventually heals: wait for a final complete answer.
  bool recovered = false;
  OptClient client;
  ASSERT_TRUE(harness.Connect(&client).ok());
  for (int i = 0; i < 400 && !recovered; ++i) {
    auto result = client.Count("g");
    recovered = result.ok() && result->partial_shards == 0 &&
                result->triangles == truth;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  EXPECT_TRUE(recovered) << "kills=" << kills << " partials=" << partials;
}

}  // namespace
}  // namespace opt

namespace {

/// Minimal opt_server clone for self-exec children (the sanitize preset
/// builds no tools). Accepts the flags ShardSet appends (--port,
/// --graph name=path) plus --workers/--default_pages/--no_cache, prints
/// the same "listening on" line, and runs until SIGTERM kills it.
int RunShardServerChild(int argc, char** argv) {
  using namespace opt;
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  // Default-on bounded tracing, like the real opt_server: router tests
  // pull this ring over TRACE_PULL to assemble the fleet trace.
  static TraceRecorder trace_recorder(1u << 14);
  if (!cl->GetBool("no_trace", false)) StartTracing(&trace_recorder);
  Env* env = Env::Default();
  GraphRegistry registry(env, {});
  SchedulerOptions scheduler_options;
  scheduler_options.workers =
      static_cast<uint32_t>(cl->GetInt("workers", 2));
  scheduler_options.default_memory_pages =
      static_cast<uint32_t>(cl->GetInt("default_pages", 64));
  scheduler_options.enable_result_cache = !cl->GetBool("no_cache", false);
  QueryScheduler scheduler(&registry, scheduler_options);
  const std::string spec = cl->GetString("graph");
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    std::fprintf(stderr, "need --graph name=/path\n");
    return 2;
  }
  if (Status s = scheduler.LoadGraph(spec.substr(0, eq), spec.substr(eq + 1));
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  OptServer server(&scheduler);
  Status status =
      server.ListenTcp(static_cast<uint16_t>(cl->GetInt("port", 0)));
  if (status.ok()) status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", server.bound_port());
  std::fflush(stdout);
  for (;;) ::pause();  // SIGTERM/SIGKILL from the supervisor ends us
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--shard-server-child") == 0) {
    return RunShardServerChild(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
