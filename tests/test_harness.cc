// Tests for the experiment harness: dataset stand-ins, the uniform
// method runner, Amdahl helpers.
#include <gtest/gtest.h>

#include <set>

#include "harness/amdahl.h"
#include "harness/datasets.h"
#include "harness/methods.h"
#include "test_helpers.h"

namespace opt {
namespace {

TEST(AmdahlTest, KnownValues) {
  EXPECT_DOUBLE_EQ(AmdahlUpperBound(1.0, 6), 6.0);
  EXPECT_DOUBLE_EQ(AmdahlUpperBound(0.0, 6), 1.0);
  EXPECT_NEAR(AmdahlUpperBound(0.961, 6), 5.03, 0.01);  // Table 5, LJ/OPT
  EXPECT_NEAR(AmdahlUpperBound(0.271, 6), 1.29, 0.01);  // GraphChi, LJ
}

TEST(AmdahlTest, MonotoneInCoresAndFraction) {
  EXPECT_LT(AmdahlUpperBound(0.9, 2), AmdahlUpperBound(0.9, 6));
  EXPECT_LT(AmdahlUpperBound(0.5, 6), AmdahlUpperBound(0.9, 6));
}

TEST(DatasetsTest, FiveDatasetsInSizeOrder) {
  auto specs = PaperDatasets(3);
  ASSERT_EQ(specs.size(), 5u);
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.paper_name);
  EXPECT_EQ(names, (std::set<std::string>{"LJ", "ORKUT", "TWITTER", "UK",
                                          "YAHOO"}));
  // YAHOO has the most vertices, as in Table 2.
  EXPECT_GE(specs[4].scale, specs[0].scale);
}

TEST(DatasetsTest, ScaleShiftShrinks) {
  auto large = PaperDatasets(0);
  auto small = PaperDatasets(4);
  EXPECT_GT(large[0].scale, small[0].scale);
}

TEST(DatasetsTest, BuildAppliesDegreeOrder) {
  auto specs = PaperDatasets(5);
  CSRGraph g = BuildDataset(specs[0]);
  for (VertexId v = 0; v + 1 < g.num_vertices(); ++v) {
    ASSERT_LE(g.degree(v), g.degree(v + 1));
  }
}

TEST(DatasetsTest, MaterializeRoundtrip) {
  auto specs = PaperDatasets(6);
  CSRGraph graph;
  auto store = MaterializeDataset(specs[0], Env::Default(),
                                  testutil::ProcessTempDir(), 512, &graph);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_vertices(), graph.num_vertices());
  EXPECT_EQ((*store)->num_directed_edges(), graph.num_directed_edges());
}

TEST(DatasetsTest, BufferPercentMath) {
  auto specs = PaperDatasets(6);
  auto store = MaterializeDataset(specs[0], Env::Default(),
                                  testutil::ProcessTempDir(), 512);
  ASSERT_TRUE(store.ok());
  const uint32_t p15 = PagesForBufferPercent(**store, 15.0);
  const uint32_t p25 = PagesForBufferPercent(**store, 25.0);
  EXPECT_LT(p15, p25);
  EXPECT_GE(p15, 2u);
}

class MethodRunnerTest : public ::testing::TestWithParam<Method> {};

TEST_P(MethodRunnerTest, AllMethodsAgreeOnTriangleCount) {
  auto specs = PaperDatasets(6);  // small: scale 8
  CSRGraph graph;
  auto store = MaterializeDataset(specs[0], Env::Default(),
                                  testutil::ProcessTempDir(), 256, &graph);
  ASSERT_TRUE(store.ok());
  const uint64_t oracle = testutil::OracleCount(graph);

  MethodConfig config;
  config.memory_pages = std::max((*store)->MaxRecordPages() * 2,
                                 (*store)->num_pages() / 5);
  config.num_threads = 2;
  config.temp_dir = testutil::ProcessTempDir();
  auto result = RunMethod(GetParam(), store->get(), Env::Default(), config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->triangles, oracle) << result->method;
  EXPECT_GT(result->seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodRunnerTest,
    ::testing::Values(Method::kOpt, Method::kOptSerial, Method::kOptNoMorph,
                      Method::kOptVertexIter, Method::kMgt, Method::kCcSeq,
                      Method::kCcDs, Method::kGraphChiTri,
                      Method::kGraphChiTriSerial, Method::kIdeal),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = MethodName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(MethodRunnerTest, MgtReadsMoreThanOpt) {
  // Eq. 7: MGT's I/O exceeds OPT_serial's.
  auto specs = PaperDatasets(6);
  auto store = MaterializeDataset(specs[1], Env::Default(),
                                  testutil::ProcessTempDir(), 256);
  ASSERT_TRUE(store.ok());
  MethodConfig config;
  config.memory_pages = std::max((*store)->MaxRecordPages() * 2,
                                 (*store)->num_pages() / 5);
  config.temp_dir = testutil::ProcessTempDir();
  auto opt = RunMethod(Method::kOptSerial, store->get(), Env::Default(),
                       config);
  auto mgt = RunMethod(Method::kMgt, store->get(), Env::Default(), config);
  ASSERT_TRUE(opt.ok());
  ASSERT_TRUE(mgt.ok());
  EXPECT_EQ(opt->triangles, mgt->triangles);
  EXPECT_GT(mgt->pages_read, opt->pages_read);
}

}  // namespace
}  // namespace opt
