// Overlap-profiler and flight-recorder tests: ring wraparound and torn-
// read protection (including under TSan via the sanitize label), role
// sampling, the stall guard, morph accounting, and a profiled
// end-to-end OPT run whose report must be internally consistent.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/opt_runner.h"
#include "gen/erdos_renyi.h"
#include "obs/flight_recorder.h"
#include "obs/overlap_profiler.h"
#include "storage/env.h"
#include "test_helpers.h"
#include "util/metrics.h"

namespace opt {
namespace {

// ---------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(256).capacity(), 256u);
}

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventType::kFetchHit, 1);
  recorder.Record(FlightEventType::kFetchMiss, 2);
  recorder.Record(FlightEventType::kIoRetry, 3, 1);
  const std::vector<FlightEvent> tail = recorder.Tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].type, FlightEventType::kFetchHit);
  EXPECT_EQ(tail[0].a, 1u);
  EXPECT_EQ(tail[1].type, FlightEventType::kFetchMiss);
  EXPECT_EQ(tail[1].a, 2u);
  EXPECT_EQ(tail[2].type, FlightEventType::kIoRetry);
  EXPECT_EQ(tail[2].a, 3u);
  EXPECT_EQ(tail[2].b, 1u);
  EXPECT_EQ(recorder.total_recorded(), 3u);
  // Timestamps are monotone within a single writer.
  EXPECT_LE(tail[0].t_micros, tail[1].t_micros);
  EXPECT_LE(tail[1].t_micros, tail[2].t_micros);
}

TEST(FlightRecorder, WraparoundKeepsTheMostRecentEvents) {
  FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(FlightEventType::kFetchHit, i);
  }
  EXPECT_EQ(recorder.total_recorded(), 20u);
  const std::vector<FlightEvent> tail = recorder.Tail();
  ASSERT_EQ(tail.size(), 8u);
  // The ring keeps exactly the last 8 payloads, oldest first.
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].a, 12 + i) << "index " << i;
  }
}

TEST(FlightRecorder, TailHonorsMaxEvents) {
  FlightRecorder recorder(16);
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Record(FlightEventType::kFetchMiss, i);
  }
  const std::vector<FlightEvent> tail = recorder.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].a, 7u);
  EXPECT_EQ(tail[2].a, 9u);
}

TEST(FlightRecorder, ConcurrentWritersNeverProduceTornEvents) {
  // Each event carries a self-consistent (a, b) pair; any torn slot the
  // reader failed to skip would break the invariant. Run readers
  // concurrently with the writers so the seq-validation path is
  // exercised, not just the quiescent one. The sanitize label reruns
  // this under TSan.
  FlightRecorder recorder(64);
  constexpr int kWriters = 4;
  constexpr uint64_t kEventsPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const FlightEvent& event : recorder.Tail()) {
        ASSERT_EQ(event.b, event.a ^ 0xabcdef0123456789ull);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (uint64_t i = 0; i < kEventsPerWriter; ++i) {
        const uint64_t a = (static_cast<uint64_t>(w) << 32) | i;
        recorder.Record(FlightEventType::kFetchHit, a,
                        a ^ 0xabcdef0123456789ull);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(recorder.total_recorded(), kWriters * kEventsPerWriter);
  const std::vector<FlightEvent> tail = recorder.Tail();
  EXPECT_EQ(tail.size(), recorder.capacity());
  for (const FlightEvent& event : tail) {
    EXPECT_EQ(event.b, event.a ^ 0xabcdef0123456789ull);
  }
}

TEST(FlightRecorder, RenderNamesEveryEventType) {
  std::vector<FlightEvent> events;
  for (uint8_t t = 1; t <= 11; ++t) {
    FlightEvent event;
    event.type = static_cast<FlightEventType>(t);
    event.t_micros = t * 10;
    event.a = t;
    event.b = t;
    events.push_back(event);
  }
  const std::string text = FlightRecorder::Render(events);
  for (uint8_t t = 1; t <= 11; ++t) {
    EXPECT_NE(text.find(FlightEventTypeName(static_cast<FlightEventType>(t))),
              std::string::npos)
        << text;
  }
}

// ---------------------------------------------------------------------
// OverlapProfiler

OverlapProfiler::Options FastOptions() {
  OverlapProfiler::Options options;
  options.period_micros = 200;
  options.trace_counters = false;
  return options;
}

TEST(OverlapProfiler, SamplesRegisteredRoles) {
  OverlapProfiler profiler(FastOptions());
  {
    OverlapProfiler::ThreadScope scope(&profiler, ThreadRole::kInternal);
    OverlapProfiler::SetRole(ThreadRole::kInternal);
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
    while (std::chrono::steady_clock::now() < until) {
      OverlapProfiler::SetWork(/*internal_work=*/true);  // keep fresh
      std::this_thread::yield();
    }
  }
  profiler.Stop();
  const OverlapReport report = profiler.Report();
  EXPECT_GT(report.samples, 0u);
  EXPECT_GT(report.role_samples[static_cast<size_t>(ThreadRole::kInternal)],
            0u);
  EXPECT_GT(report.cpu_active_samples, 0u);
  EXPECT_EQ(report.period_micros, 200u);
}

TEST(OverlapProfiler, MacroOverlapNeedsBothSidesSimultaneously) {
  OverlapProfiler profiler(FastOptions());
  std::atomic<bool> stop{false};
  auto spin = [&stop](OverlapProfiler* p, bool internal) {
    OverlapProfiler::ThreadScope scope(
        p, internal ? ThreadRole::kInternal : ThreadRole::kExternal);
    while (!stop.load(std::memory_order_relaxed)) {
      OverlapProfiler::SetWork(internal);
      std::this_thread::yield();
    }
  };
  std::thread a(spin, &profiler, true);
  std::thread b(spin, &profiler, false);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true, std::memory_order_relaxed);
  a.join();
  b.join();
  profiler.Stop();
  const OverlapReport report = profiler.Report();
  EXPECT_GT(report.samples, 0u);
  EXPECT_GT(report.macro_overlap_samples, 0u);
  EXPECT_LE(report.MacroOverlapFraction(), 1.0);
}

TEST(OverlapProfiler, MicroOverlapSeesTheInflightGauge) {
  // CPU role active while the process-wide in-flight gauge is nonzero
  // must count as micro overlap.
  Gauge* inflight = Metrics().GetGauge("io.inflight_depth");
  inflight->Set(2);
  OverlapProfiler profiler(FastOptions());
  {
    OverlapProfiler::ThreadScope scope(&profiler, ThreadRole::kInternal);
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
    while (std::chrono::steady_clock::now() < until) {
      OverlapProfiler::SetWork(/*internal_work=*/true);
      std::this_thread::yield();
    }
  }
  profiler.Stop();
  inflight->Set(0);
  const OverlapReport report = profiler.Report();
  EXPECT_GT(report.samples, 0u);
  EXPECT_GT(report.micro_overlap_samples, 0u);
  EXPECT_GT(report.io_inflight_samples, 0u);
  EXPECT_LE(report.MicroOverlapFraction(), 1.0);
}

TEST(OverlapProfiler, StallGuardDiscardsStaleSlots) {
  // Publish one role update, then sleep far past stall_periods × period
  // without refreshing: the sampler must tally `stalled` samples instead
  // of crediting the stale role forever.
  OverlapProfiler::Options options = FastOptions();
  options.stall_periods = 10;  // stale after 2 ms
  OverlapProfiler profiler(options);
  {
    OverlapProfiler::ThreadScope scope(&profiler, ThreadRole::kInternal);
    OverlapProfiler::SetRole(ThreadRole::kInternal);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  profiler.Stop();
  const OverlapReport report = profiler.Report();
  EXPECT_GT(report.stalled_samples, 0u);
  // The stale slot must not keep counting as live internal work: at
  // most the pre-stall window's worth of samples is credited.
  EXPECT_LT(report.role_samples[static_cast<size_t>(ThreadRole::kInternal)],
            report.samples);
}

TEST(OverlapProfiler, MorphEventsAreCounted) {
  OverlapProfiler profiler(FastOptions());
  profiler.RecordMorph();
  profiler.RecordMorph();
  profiler.RecordMorph();
  profiler.Stop();
  EXPECT_EQ(profiler.Report().morph_events, 3u);
}

TEST(OverlapProfiler, NullProfilerScopesAreNoOps) {
  OverlapProfiler::ThreadScope scope(nullptr, ThreadRole::kInternal);
  OverlapProfiler::SetRole(ThreadRole::kExternal);   // must not crash
  OverlapProfiler::SetWork(/*internal_work=*/false);  // must not crash
}

// ---------------------------------------------------------------------
// Profiled end-to-end run

TEST(ProfiledRun, ReportIsFilledAndInternallyConsistent) {
  CSRGraph g = GenerateErdosRenyi(400, 4000, 1234);
  auto store = testutil::MakeStore(g, Env::Default(), "profiled_run");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 8);
  options.m_ex = options.m_in;
  options.num_threads = 2;
  options.macro_overlap = true;
  options.thread_morphing = true;
  options.profile = true;
  options.profile_period_micros = 100;
  FlightRecorder recorder(128);
  options.flight = &recorder;

  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  OptRunStats stats;
  Status s = runner.Run(&sink, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));

  ASSERT_TRUE(stats.profiled);
  const OverlapReport& report = stats.overlap;
  EXPECT_GT(report.samples, 0u);
  EXPECT_LE(report.MicroOverlapFraction(), 1.0);
  EXPECT_LE(report.MacroOverlapFraction(), 1.0);
  EXPECT_LE(report.micro_overlap_samples, report.samples);
  EXPECT_LE(report.macro_overlap_samples, report.samples);
  // The cost model is fitted from this run's measurements.
  EXPECT_GT(report.cost.measured_seconds, 0.0);
  EXPECT_GE(report.cost.c_seconds_per_page, 0.0);
  EXPECT_GT(report.cost.ideal_seconds, 0.0);
  EXPECT_NEAR(report.cost.residual_seconds,
              report.cost.measured_seconds - report.cost.predicted_seconds,
              1e-9);
  // Fetch outcomes were recorded for every page touched.
  EXPECT_GT(recorder.total_recorded(), 0u);

  // An unprofiled run must not fill the report.
  options.profile = false;
  options.flight = nullptr;
  OptRunner plain(store.get(), &model, options);
  CountingSink sink2;
  OptRunStats stats2;
  ASSERT_TRUE(plain.Run(&sink2, &stats2).ok());
  EXPECT_FALSE(stats2.profiled);
}

}  // namespace
}  // namespace opt
