// Streaming edge-delta tests: DeltaOverlay unit coverage, metamorphic
// properties (add-then-remove restoration, batch order independence,
// typed rejections), the TRIÈST approximate counter, and the
// differential mutation-soak — thousands of seeded insert/delete deltas
// against an in-memory mirror graph, with incremental counts checked
// against a from-scratch recompute at every checkpoint, plain and under
// fault injection.
//
// Every randomized case derives from one seed printed via SCOPED_TRACE
// as a one-line repro; override with OPT_STREAMING_SEED=<n>.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "graph/delta_overlay.h"
#include "graph/streaming_approx.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "storage/fault_env.h"
#include "test_helpers.h"
#include "util/metrics.h"
#include "util/random.h"

namespace opt {
namespace {

using testutil::OracleCount;
using testutil::OracleTriangles;

using EdgePair = std::pair<VertexId, VertexId>;

uint64_t SoakSeed() {
  if (const char* env = std::getenv("OPT_STREAMING_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xC0FFEE;
}

std::string ReproLine(uint64_t seed) {
  return "repro: OPT_STREAMING_SEED=" + std::to_string(seed) +
         " ./test_streaming";
}

/// Nightly soak budget (seconds). When OPT_SOAK_SECONDS is set the
/// differential soak keeps re-running all shapes under fresh derived
/// seeds until the wall budget elapses — the same gate the chaos suite
/// uses. Unset (every normal run): a single fixed-size pass.
int SoakBudgetSeconds() {
  if (const char* env = std::getenv("OPT_SOAK_SECONDS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 0;
}

EdgePair Canonical(VertexId u, VertexId v) {
  return u < v ? EdgePair{u, v} : EdgePair{v, u};
}

std::set<EdgePair> EdgeSetOf(const CSRGraph& g) {
  std::set<EdgePair> edges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.Successors(v)) edges.insert({v, w});
  }
  return edges;
}

/// From-scratch oracle over the mirror edge set — the ground truth the
/// incremental count must match at every checkpoint.
uint64_t MirrorTriangles(const std::set<EdgePair>& edges) {
  if (edges.empty()) return 0;
  return OracleCount(
      GraphBuilder::FromEdges({edges.begin(), edges.end()}));
}

AdjacencyFetcher GraphFetcher(const CSRGraph* g) {
  return [g](VertexId v, std::vector<VertexId>* out) {
    const auto neighbors = g->Neighbors(v);
    out->assign(neighbors.begin(), neighbors.end());
    return Status::OK();
  };
}

CSRGraph DiamondGraph() {
  // K4 minus the edge {2,3}: triangles {0,1,2} and {0,1,3}.
  return GraphBuilder::FromEdges(
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
}

// ---------------------------------------------------------------------
// DeltaOverlay unit tests (in-memory fetcher).
// ---------------------------------------------------------------------

TEST(DeltaOverlay, AddAndRemoveMaintainExactTriangleDelta) {
  const CSRGraph base = DiamondGraph();
  ASSERT_EQ(OracleCount(base), 2u);

  DeltaApplyStats stats;
  const std::vector<Edge> batch = {{2, 3}};
  auto with_edge = DeltaOverlay::Apply(nullptr, DeltaKind::kAdd, batch,
                                       base.num_vertices(),
                                       GraphFetcher(&base), &stats);
  ASSERT_TRUE(with_edge.ok()) << with_edge.status().ToString();
  // {2,3} closes against common neighbors {0,1}: K4 has 4 triangles.
  EXPECT_EQ((*with_edge)->triangle_delta(), 2);
  EXPECT_EQ((*with_edge)->edges_added(), 1u);
  EXPECT_EQ(stats.triangles_added, 2u);
  EXPECT_EQ(stats.edges_applied, 1u);
  EXPECT_GT(stats.base_fetches, 0u);

  auto removed = DeltaOverlay::Apply(with_edge->get(), DeltaKind::kRemove,
                                     batch, base.num_vertices(),
                                     GraphFetcher(&base));
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ((*removed)->triangle_delta(), 0);
  EXPECT_TRUE((*removed)->empty());
  EXPECT_EQ((*removed)->edges_added(), 0u);
  EXPECT_EQ((*removed)->edges_removed(), 0u);
}

TEST(DeltaOverlay, RemovingBaseEdgeSubtractsItsTriangles) {
  const CSRGraph base = DiamondGraph();
  auto overlay = DeltaOverlay::Apply(nullptr, DeltaKind::kRemove,
                                     std::vector<Edge>{{0, 1}},
                                     base.num_vertices(),
                                     GraphFetcher(&base));
  ASSERT_TRUE(overlay.ok()) << overlay.status().ToString();
  // {0,1} participates in both triangles.
  EXPECT_EQ((*overlay)->triangle_delta(), -2);
  EXPECT_EQ((*overlay)->edges_removed(), 1u);
  EXPECT_EQ((*overlay)->edges_added(), 0u);
}

TEST(DeltaOverlay, MergeNeighborsReflectsEdits) {
  const CSRGraph base = DiamondGraph();
  auto overlay = DeltaOverlay::Apply(nullptr, DeltaKind::kAdd,
                                     std::vector<Edge>{{2, 3}},
                                     base.num_vertices(),
                                     GraphFetcher(&base));
  ASSERT_TRUE(overlay.ok());
  auto remove = DeltaOverlay::Apply(overlay->get(), DeltaKind::kRemove,
                                    std::vector<Edge>{{0, 2}},
                                    base.num_vertices(),
                                    GraphFetcher(&base));
  ASSERT_TRUE(remove.ok());
  const DeltaOverlay& view = **remove;
  EXPECT_TRUE(view.TouchesVertex(2));
  EXPECT_TRUE(view.TouchesVertex(0));
  EXPECT_FALSE(view.TouchesVertex(1));
  const auto n2 = base.Neighbors(2);
  EXPECT_EQ(view.MergeNeighbors(2, n2), (std::vector<VertexId>{1, 3}));
  const auto n1 = base.Neighbors(1);
  EXPECT_EQ(view.MergeNeighbors(1, n1), (std::vector<VertexId>{0, 2, 3}));
}

TEST(DeltaOverlay, BatchApplicationIsOrderIndependent) {
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  const CSRGraph base = GenerateErdosRenyi(64, 220, seed);
  std::set<EdgePair> present = EdgeSetOf(base);
  Random64 rng(seed ^ 0x9E3779B97F4A7C15ull);

  // One mixed batch of absent edges to add, in two different orders.
  std::vector<Edge> batch;
  while (batch.size() < 24) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(64));
    const VertexId v = static_cast<VertexId>(rng.Uniform(64));
    if (u == v) continue;
    if (!present.insert(Canonical(u, v)).second) continue;
    batch.push_back({u, v});
  }
  std::vector<Edge> reversed(batch.rbegin(), batch.rend());

  auto forward = DeltaOverlay::Apply(nullptr, DeltaKind::kAdd, batch,
                                     base.num_vertices(),
                                     GraphFetcher(&base));
  auto backward = DeltaOverlay::Apply(nullptr, DeltaKind::kAdd, reversed,
                                      base.num_vertices(),
                                      GraphFetcher(&base));
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ((*forward)->triangle_delta(), (*backward)->triangle_delta());
  EXPECT_EQ((*forward)->edges_added(), (*backward)->edges_added());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    const auto n = base.Neighbors(v);
    EXPECT_EQ((*forward)->MergeNeighbors(v, n),
              (*backward)->MergeNeighbors(v, n))
        << "merged views diverge at vertex " << v;
  }
  // And the delta matches the from-scratch difference.
  const int64_t expected =
      static_cast<int64_t>(MirrorTriangles(present)) -
      static_cast<int64_t>(OracleCount(base));
  EXPECT_EQ((*forward)->triangle_delta(), expected);
}

TEST(DeltaOverlay, RejectsInvalidBatchesWithTypedErrors) {
  const CSRGraph base = DiamondGraph();
  const AdjacencyFetcher fetch = GraphFetcher(&base);
  const VertexId n = base.num_vertices();

  auto self_loop = DeltaOverlay::Apply(nullptr, DeltaKind::kAdd,
                                       std::vector<Edge>{{1, 1}}, n, fetch);
  ASSERT_FALSE(self_loop.ok());
  EXPECT_TRUE(self_loop.status().IsInvalidArgument())
      << self_loop.status().ToString();

  auto out_of_range = DeltaOverlay::Apply(
      nullptr, DeltaKind::kAdd, std::vector<Edge>{{0, 99}}, n, fetch);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_TRUE(out_of_range.status().IsInvalidArgument());

  // Duplicate within a batch, in either orientation.
  auto duplicate = DeltaOverlay::Apply(
      nullptr, DeltaKind::kAdd, std::vector<Edge>{{2, 3}, {3, 2}}, n, fetch);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_TRUE(duplicate.status().IsInvalidArgument());

  auto already_present = DeltaOverlay::Apply(
      nullptr, DeltaKind::kAdd, std::vector<Edge>{{0, 1}}, n, fetch);
  ASSERT_FALSE(already_present.ok());
  EXPECT_TRUE(already_present.status().IsInvalidArgument());

  auto not_present = DeltaOverlay::Apply(
      nullptr, DeltaKind::kRemove, std::vector<Edge>{{2, 3}}, n, fetch);
  ASSERT_FALSE(not_present.ok());
  EXPECT_TRUE(not_present.status().IsInvalidArgument());

  auto empty = DeltaOverlay::Apply(nullptr, DeltaKind::kAdd,
                                   std::vector<Edge>{}, n, fetch);
  ASSERT_FALSE(empty.ok());
  EXPECT_TRUE(empty.status().IsInvalidArgument());
}

TEST(DeltaOverlay, FetchFailurePropagatesWithoutCommitting) {
  const CSRGraph base = DiamondGraph();
  const AdjacencyFetcher failing = [](VertexId,
                                      std::vector<VertexId>*) {
    return Status::Unavailable("injected fetch failure");
  };
  auto result = DeltaOverlay::Apply(nullptr, DeltaKind::kAdd,
                                    std::vector<Edge>{{2, 3}},
                                    base.num_vertices(), failing);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

// ---------------------------------------------------------------------
// TRIÈST approximate counter.
// ---------------------------------------------------------------------

TEST(TriestEstimator, ExactWhileStreamFitsReservoir) {
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  const CSRGraph g = GenerateErdosRenyi(120, 900, seed);
  const std::set<EdgePair> edge_set = EdgeSetOf(g);
  std::vector<EdgePair> edges(edge_set.begin(), edge_set.end());
  Random64 rng(seed);
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.Uniform(i)]);
  }
  TriestEstimator estimator(/*reservoir_edges=*/4096, seed);
  for (const auto& [u, v] : edges) estimator.OnInsert(u, v);
  EXPECT_TRUE(estimator.valid());
  EXPECT_EQ(estimator.stream_length(), edges.size());
  EXPECT_DOUBLE_EQ(estimator.estimate(),
                   static_cast<double>(OracleCount(g)));
}

TEST(TriestEstimator, SampledEstimateWithinTolerance) {
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  const CSRGraph g = GenerateErdosRenyi(300, 4000, seed + 1);
  const std::set<EdgePair> edge_set = EdgeSetOf(g);
  std::vector<EdgePair> edges(edge_set.begin(), edge_set.end());
  Random64 rng(seed + 1);
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.Uniform(i)]);
  }
  TriestEstimator estimator(/*reservoir_edges=*/1500, seed + 1);
  for (const auto& [u, v] : edges) estimator.OnInsert(u, v);
  EXPECT_EQ(estimator.reservoir_size(), 1500u);
  const double exact = static_cast<double>(OracleCount(g));
  ASSERT_GT(exact, 0);
  // Deterministic given the seed; the bound is generous because the
  // test pins behavior, not the estimator's variance.
  EXPECT_GT(estimator.estimate(), 0.3 * exact)
      << "estimate " << estimator.estimate() << " vs exact " << exact;
  EXPECT_LT(estimator.estimate(), 3.0 * exact)
      << "estimate " << estimator.estimate() << " vs exact " << exact;
}

TEST(TriestEstimator, RemovalTaintsTheEstimate) {
  TriestEstimator estimator(64, 7);
  estimator.OnInsert(0, 1);
  EXPECT_TRUE(estimator.valid());
  estimator.Taint();
  EXPECT_FALSE(estimator.valid());
}

// ---------------------------------------------------------------------
// Registry / scheduler integration.
// ---------------------------------------------------------------------

struct ServiceFixture {
  explicit ServiceFixture(Env* env, const CSRGraph& g,
                          const std::string& tag,
                          uint64_t approx_reservoir = 0) {
    static int counter = 0;
    base_path = testutil::ProcessTempDir() + "/stream_" + tag + "_" +
                std::to_string(counter++);
    GraphStoreOptions store_options;
    store_options.page_size = 256;
    const Status created = GraphStore::Create(g, env, base_path, store_options);
    EXPECT_TRUE(created.ok()) << created.ToString();
    RegistryOptions registry_options;
    registry_options.approx_reservoir_edges = approx_reservoir;
    registry = std::make_unique<GraphRegistry>(env, registry_options);
    SchedulerOptions scheduler_options;
    scheduler_options.workers = 2;
    scheduler_options.default_memory_pages = 32;
    scheduler = std::make_unique<QueryScheduler>(registry.get(),
                                                 scheduler_options);
    EXPECT_TRUE(scheduler->LoadGraph("g", base_path).ok());
  }

  uint64_t Count() {
    QuerySpec spec;
    spec.graph = "g";
    const QueryResult result = scheduler->Run(spec);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return result.triangles;
  }

  std::string base_path;
  std::unique_ptr<GraphRegistry> registry;
  std::unique_ptr<QueryScheduler> scheduler;
};

TEST(StreamingService, AddThenRemoveRestoresPriorCountAndListing) {
  Env* env = Env::Default();
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  const CSRGraph g = GenerateErdosRenyi(80, 400, seed);
  ServiceFixture service(env, g, "restore");

  const uint64_t base_count = service.Count();
  EXPECT_EQ(base_count, OracleCount(g));

  // A batch of absent edges.
  std::set<EdgePair> present = EdgeSetOf(g);
  Random64 rng(seed);
  std::vector<Edge> batch;
  while (batch.size() < 12) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(80));
    const VertexId v = static_cast<VertexId>(rng.Uniform(80));
    if (u == v || !present.insert(Canonical(u, v)).second) continue;
    batch.push_back({u, v});
  }

  const MutationResult added =
      service.scheduler->ApplyDelta("g", DeltaKind::kAdd, batch);
  ASSERT_TRUE(added.status.ok()) << added.status.ToString();
  EXPECT_EQ(added.edges_applied, batch.size());
  EXPECT_EQ(service.Count(), MirrorTriangles(present));

  // LIST refuses while the overlay is dirty (the engine streams the
  // base store only).
  VectorSink sink;
  QuerySpec list_spec;
  list_spec.graph = "g";
  list_spec.kind = QueryKind::kList;
  list_spec.list_sink = &sink;
  const QueryResult dirty_list = service.scheduler->Run(list_spec);
  EXPECT_EQ(dirty_list.status.code(), StatusCode::kNotSupported)
      << dirty_list.status.ToString();

  // Metamorphic restoration: removing the same batch lands back on the
  // exact prior count, an empty overlay, and a working LIST.
  const MutationResult removed =
      service.scheduler->ApplyDelta("g", DeltaKind::kRemove, batch);
  ASSERT_TRUE(removed.status.ok()) << removed.status.ToString();
  EXPECT_EQ(removed.total_triangle_delta, 0);
  EXPECT_EQ(removed.batch_triangle_delta, -added.batch_triangle_delta);
  EXPECT_GT(removed.epoch, added.epoch);
  EXPECT_EQ(service.Count(), base_count);

  auto snap = service.registry->DeltaState("g");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->triangle_delta, 0);
  EXPECT_EQ(snap->edges_added, 0u);
  EXPECT_EQ(snap->edges_removed, 0u);

  VectorSink restored_sink;
  list_spec.list_sink = &restored_sink;
  const QueryResult restored_list = service.scheduler->Run(list_spec);
  ASSERT_TRUE(restored_list.status.ok())
      << restored_list.status.ToString();
  EXPECT_EQ(restored_sink.Sorted(), OracleTriangles(g));
}

TEST(StreamingService, RejectedBatchesLeaveStateUntouched) {
  Env* env = Env::Default();
  const CSRGraph g = DiamondGraph();
  ServiceFixture service(env, g, "reject");
  const uint64_t count0 = service.Count();

  auto handle0 = service.registry->Acquire("g");
  ASSERT_TRUE(handle0.ok());
  const uint64_t epoch0 = handle0->epoch;

  // Self-loop, duplicate, already-present, not-present: all typed
  // InvalidArgument, none of them bump the epoch or the count — even
  // when the bad edge comes after valid ones in the batch (atomicity).
  const std::vector<std::pair<DeltaKind, std::vector<Edge>>> bad_batches = {
      {DeltaKind::kAdd, {{1, 1}}},
      {DeltaKind::kAdd, {{2, 3}, {3, 2}}},
      {DeltaKind::kAdd, {{2, 3}, {0, 1}}},
      {DeltaKind::kRemove, {{0, 1}, {2, 3}}},
      {DeltaKind::kAdd, {{0, 77}}},
  };
  for (const auto& [kind, batch] : bad_batches) {
    const MutationResult result =
        service.scheduler->ApplyDelta("g", kind, batch);
    EXPECT_TRUE(result.status.IsInvalidArgument())
        << result.status.ToString();
    EXPECT_FALSE(result.degraded);
  }
  auto handle1 = service.registry->Acquire("g");
  ASSERT_TRUE(handle1.ok());
  EXPECT_EQ(handle1->epoch, epoch0);
  EXPECT_TRUE(handle1->overlay == nullptr || handle1->overlay->empty());
  EXPECT_EQ(service.Count(), count0);

  auto missing =
      service.scheduler->ApplyDelta("missing", DeltaKind::kAdd,
                                    std::vector<Edge>{{0, 1}});
  EXPECT_TRUE(missing.status.IsNotFound());
}

TEST(StreamingService, SubscribeLongPollWakesOnMutation) {
  Env* env = Env::Default();
  const CSRGraph g = DiamondGraph();
  ServiceFixture service(env, g, "subscribe");
  const uint64_t base_count = service.Count();
  ASSERT_EQ(base_count, 2u);

  auto now = service.registry->WaitForEpoch(
      "g", 0, std::chrono::milliseconds(0));
  ASSERT_TRUE(now.ok());
  EXPECT_FALSE(now->timed_out);
  EXPECT_TRUE(now->base_known);
  const uint64_t epoch0 = now->epoch;

  // No mutation: the wait times out and says so.
  auto timed_out = service.registry->WaitForEpoch(
      "g", epoch0, std::chrono::milliseconds(30));
  ASSERT_TRUE(timed_out.ok());
  EXPECT_TRUE(timed_out->timed_out);
  EXPECT_EQ(timed_out->epoch, epoch0);

  // A mutation from another thread wakes the poll before its deadline.
  std::thread mutator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const MutationResult result = service.scheduler->ApplyDelta(
        "g", DeltaKind::kAdd, std::vector<Edge>{{2, 3}});
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  });
  auto woken = service.registry->WaitForEpoch(
      "g", epoch0, std::chrono::milliseconds(10000));
  mutator.join();
  ASSERT_TRUE(woken.ok());
  EXPECT_FALSE(woken->timed_out);
  EXPECT_GT(woken->epoch, epoch0);
  EXPECT_EQ(woken->triangle_delta, 2);
  ASSERT_TRUE(woken->base_known);
  EXPECT_EQ(woken->base_triangles + woken->triangle_delta, 4);
}

TEST(StreamingService, WaitForEpochClampsHugeTimeouts) {
  // A u64 timeout straight off the wire can be absurdly large; naively
  // adding it to steady_clock::now() overflows the deadline and the
  // poll returns timed_out immediately. With the clamp the waiter
  // long-polls normally and a concurrent mutation wakes it.
  Env* env = Env::Default();
  const CSRGraph g = DiamondGraph();
  ServiceFixture service(env, g, "clamp");
  auto now = service.registry->WaitForEpoch(
      "g", 0, std::chrono::milliseconds(0));
  ASSERT_TRUE(now.ok());
  const uint64_t epoch0 = now->epoch;

  std::thread mutator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const MutationResult result = service.scheduler->ApplyDelta(
        "g", DeltaKind::kAdd, std::vector<Edge>{{2, 3}});
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  });
  auto woken = service.registry->WaitForEpoch(
      "g", epoch0, std::chrono::milliseconds::max());
  mutator.join();
  ASSERT_TRUE(woken.ok());
  EXPECT_FALSE(woken->timed_out);
  EXPECT_GT(woken->epoch, epoch0);
}

TEST(StreamingService, ConcurrentBatchesOnOneGraphAllSurvive) {
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  // Pure read latency (no faults): each apply's base-adjacency fetches
  // hold the per-graph mutation lock for hundreds of microseconds, so
  // the two writers contend on essentially every batch.
  auto plan = FaultPlan::Parse("seed=" + std::to_string(seed) +
                               ",latency_p=1.0,latency_us=200,"
                               "path_filter=.pages");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  FaultInjectingEnv fenv(Env::Default(), *plan);
  fenv.set_enabled(false);  // clean store build + base count
  const CSRGraph g = GenerateErdosRenyi(80, 400, seed);
  ServiceFixture service(&fenv, g, "concurrent");
  const uint64_t base_count = service.Count();
  ASSERT_EQ(base_count, OracleCount(g));

  // Two writers race disjoint absent edges at the same graph. Every
  // batch must build on its predecessor's published overlay — an apply
  // that snapshots the overlay before waiting on the per-graph mutation
  // lock validates against a stale view and its commit silently drops
  // the other writer's edges and triangle delta. Single-edge batches
  // behind a start barrier maximize lock contention so a stale-snapshot
  // regression loses updates with overwhelming probability.
  constexpr size_t kEdgesPerWriter = 60;
  std::set<EdgePair> mirror = EdgeSetOf(g);
  std::vector<std::vector<Edge>> lanes(2);
  for (VertexId u = 0; u + 1 < g.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
      if (mirror.count({u, v}) != 0) continue;
      auto& lane = lanes[(u + v) % 2];
      if (lane.size() < kEdgesPerWriter) lane.push_back({u, v});
    }
  }
  ASSERT_EQ(lanes[0].size(), kEdgesPerWriter);
  ASSERT_EQ(lanes[1].size(), kEdgesPerWriter);

  fenv.set_enabled(true);
  std::atomic<int> at_gate{0};
  std::vector<std::thread> writers;
  for (const auto& lane : lanes) {
    writers.emplace_back([&service, &lane, &at_gate] {
      at_gate.fetch_add(1);
      while (at_gate.load() < 2) std::this_thread::yield();
      for (const Edge& e : lane) {
        const MutationResult result = service.scheduler->ApplyDelta(
            "g", DeltaKind::kAdd, std::vector<Edge>{e});
        EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      }
    });
  }
  for (auto& writer : writers) writer.join();
  fenv.set_enabled(false);

  for (const auto& lane : lanes) {
    for (const Edge& e : lane) mirror.insert(Canonical(e.first, e.second));
  }
  auto snap = service.registry->DeltaState("g");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->edges_added, 2 * kEdgesPerWriter);
  EXPECT_EQ(snap->batches_applied, 2 * kEdgesPerWriter);
  EXPECT_EQ(service.Count(), MirrorTriangles(mirror));
  EXPECT_EQ(static_cast<int64_t>(MirrorTriangles(mirror)),
            static_cast<int64_t>(base_count) + snap->triangle_delta);
}

// ---------------------------------------------------------------------
// Differential mutation-soak.
// ---------------------------------------------------------------------

struct SoakShape {
  const char* name;
  CSRGraph graph;
};

std::vector<SoakShape> SoakShapes(uint64_t seed) {
  std::vector<SoakShape> shapes;
  shapes.push_back({"er", GenerateErdosRenyi(220, 1400, seed)});
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edge_factor = 8;
  rmat.seed = seed + 1;
  shapes.push_back({"rmat", GenerateRmat(rmat)});
  HolmeKimOptions hk;
  hk.num_vertices = 240;
  hk.edges_per_vertex = 5;
  hk.triad_probability = 0.6;
  hk.seed = seed + 2;
  shapes.push_back({"hk", GenerateHolmeKim(hk)});
  return shapes;
}

/// Runs `num_deltas` seeded edge deltas against one graph shape through
/// the full registry/scheduler path, checking the incremental count
/// against a from-scratch mirror recompute at every checkpoint.
void RunMutationSoak(Env* env, const SoakShape& shape, uint64_t seed,
                     uint64_t num_deltas, uint64_t batch_edges,
                     uint64_t checkpoint_every_batches) {
  SCOPED_TRACE(ReproLine(seed));
  SCOPED_TRACE(std::string("shape: ") + shape.name);
  const CSRGraph& g = shape.graph;
  const VertexId n = g.num_vertices();
  ServiceFixture service(env, g, std::string("soak_") + shape.name);

  std::set<EdgePair> mirror = EdgeSetOf(g);
  const uint64_t base_count = OracleCount(g);
  ASSERT_EQ(service.Count(), base_count);

  Random64 rng(seed ^ 0xD1F7A);
  uint64_t applied = 0;
  uint64_t batches = 0;
  int64_t expected_delta_sum = 0;
  while (applied < num_deltas) {
    // Removal pressure scales with how far the mirror has grown past
    // the base edge count, keeping the graph near its original size.
    const bool remove =
        !mirror.empty() && rng.Uniform(100) < (mirror.size() > g.num_edges()
                                                   ? 55u
                                                   : 35u);
    std::vector<Edge> batch;
    std::set<EdgePair> batch_seen;
    const uint64_t want =
        std::min<uint64_t>(batch_edges, num_deltas - applied);
    if (remove) {
      while (batch.size() < want && batch_seen.size() < mirror.size()) {
        auto it = mirror.begin();
        std::advance(it, rng.Uniform(mirror.size()));
        if (!batch_seen.insert(*it).second) continue;
        batch.push_back({it->first, it->second});
      }
    } else {
      uint64_t attempts = 0;
      while (batch.size() < want && ++attempts < 10000) {
        const VertexId u = static_cast<VertexId>(rng.Uniform(n));
        const VertexId v = static_cast<VertexId>(rng.Uniform(n));
        if (u == v) continue;
        const EdgePair e = Canonical(u, v);
        if (mirror.count(e) != 0 || !batch_seen.insert(e).second) continue;
        batch.push_back({u, v});
      }
    }
    if (batch.empty()) continue;

    const MutationResult result = service.scheduler->ApplyDelta(
        "g", remove ? DeltaKind::kRemove : DeltaKind::kAdd, batch);
    ASSERT_TRUE(result.status.ok())
        << "batch " << batches << " (" << (remove ? "remove" : "add")
        << " " << batch.size() << " edges): " << result.status.ToString();
    ASSERT_EQ(result.edges_applied, batch.size());
    for (const Edge& e : batch) {
      if (remove) {
        mirror.erase(Canonical(e.first, e.second));
      } else {
        mirror.insert(Canonical(e.first, e.second));
      }
    }
    expected_delta_sum += result.batch_triangle_delta;
    EXPECT_EQ(result.total_triangle_delta, expected_delta_sum);
    applied += batch.size();
    ++batches;

    if (batches % checkpoint_every_batches == 0) {
      const uint64_t expected = MirrorTriangles(mirror);
      ASSERT_EQ(service.Count(), expected)
          << "incremental count diverged from recompute after " << applied
          << " deltas (" << batches << " batches)";
      ASSERT_EQ(static_cast<int64_t>(expected),
                static_cast<int64_t>(base_count) + expected_delta_sum);
    }
  }
  // Final checkpoint regardless of batch alignment.
  ASSERT_EQ(service.Count(), MirrorTriangles(mirror));
  auto snap = service.registry->DeltaState("g");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->batches_applied, batches);
}

TEST(MutationSoak, DifferentialAcrossGraphShapes) {
  Env* env = Env::Default();
  const uint64_t seed = SoakSeed();
  const auto started = std::chrono::steady_clock::now();
  const uint64_t deltas_before = Metrics()
                                     .GetHistogram("delta.apply_us")
                                     ->Snapshot()
                                     .count;
  // ≥10k deltas total across three shapes.
  for (const SoakShape& shape : SoakShapes(seed)) {
    RunMutationSoak(env, shape, seed, /*num_deltas=*/3400,
                    /*batch_edges=*/16, /*checkpoint_every_batches=*/25);
  }
  // Nightly extension: re-soak all shapes with fresh derived seeds
  // until the OPT_SOAK_SECONDS budget elapses (no-op when unset). Each
  // round's seed is printed by the per-run SCOPED_TRACE repro line.
  const int budget = SoakBudgetSeconds();
  for (uint64_t round = 1;
       budget > 0 && std::chrono::steady_clock::now() - started <
                         std::chrono::seconds(budget);
       ++round) {
    const uint64_t round_seed = seed + 1000 * round;
    for (const SoakShape& shape : SoakShapes(round_seed)) {
      RunMutationSoak(env, shape, round_seed, /*num_deltas=*/3400,
                      /*batch_edges=*/16, /*checkpoint_every_batches=*/25);
    }
  }
  // The apply-latency histogram observed every batch (STATS percentiles
  // have data to report).
  EXPECT_GT(Metrics().GetHistogram("delta.apply_us")->Snapshot().count,
            deltas_before);
}

TEST(MutationSoak, DifferentialUnderTransientFaultInjection) {
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  auto plan = FaultPlan::Parse(
      "seed=" + std::to_string(seed) +
      ",read_error_p=0.05,transient=1,latency_p=0.02,latency_us=100,"
      "path_filter=.pages");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  SCOPED_TRACE("repro: --fault-plan \"" + plan->ToString() + "\"");
  FaultInjectingEnv fenv(Env::Default(), *plan);

  fenv.set_enabled(false);  // clean store build
  const CSRGraph g = GenerateErdosRenyi(160, 900, seed + 7);
  SoakShape shape{"er_faults", g};
  fenv.set_enabled(true);
  // Transient faults heal within the bounded reread budget, so the soak
  // must stay exact — no delta is ever silently dropped or double
  // applied under I/O churn.
  RunMutationSoak(&fenv, shape, seed, /*num_deltas=*/900,
                  /*batch_edges=*/12, /*checkpoint_every_batches=*/20);
}

TEST(MutationSoak, PersistentFaultsDegradeToUnavailableWithoutApplying) {
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  auto plan = FaultPlan::Parse("seed=" + std::to_string(seed) +
                               ",read_error_p=1.0,transient=0,"
                               "path_filter=.pages");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  FaultInjectingEnv fenv(Env::Default(), *plan);

  fenv.set_enabled(false);
  const CSRGraph g = DiamondGraph();
  ServiceFixture service(&fenv, g, "degrade");
  const uint64_t count0 = service.Count();
  auto handle0 = service.registry->Acquire("g");
  ASSERT_TRUE(handle0.ok());

  fenv.set_enabled(true);
  const std::vector<Edge> batch = {{2, 3}};
  const MutationResult degraded =
      service.scheduler->ApplyDelta("g", DeltaKind::kAdd, batch);
  ASSERT_TRUE(degraded.status.IsUnavailable())
      << degraded.status.ToString();
  EXPECT_TRUE(degraded.degraded);

  // Nothing committed: same epoch, clean overlay.
  auto handle1 = service.registry->Acquire("g");
  ASSERT_TRUE(handle1.ok());
  EXPECT_EQ(handle1->epoch, handle0->epoch);
  EXPECT_TRUE(handle1->overlay == nullptr || handle1->overlay->empty());

  // The same batch retried after the device heals applies cleanly —
  // degraded mutations are rejected loudly, never half-applied.
  fenv.set_enabled(false);
  const MutationResult retried =
      service.scheduler->ApplyDelta("g", DeltaKind::kAdd, batch);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_EQ(service.Count(), count0 + 2);
}

TEST(StreamingService, ApproxEstimatorTracksInsertStream) {
  Env* env = Env::Default();
  const uint64_t seed = SoakSeed();
  SCOPED_TRACE(ReproLine(seed));
  // Base graph with no edges worth of overlap: feed fresh edges and the
  // estimator (scoped to streamed edges) stays exact while they fit.
  const CSRGraph g = GenerateErdosRenyi(60, 150, seed);
  ServiceFixture service(env, g, "approx", /*approx_reservoir=*/4096);

  std::set<EdgePair> present = EdgeSetOf(g);
  std::set<EdgePair> streamed;
  Random64 rng(seed + 3);
  std::vector<Edge> batch;
  while (batch.size() < 40) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(60));
    const VertexId v = static_cast<VertexId>(rng.Uniform(60));
    if (u == v || !present.insert(Canonical(u, v)).second) continue;
    batch.push_back({u, v});
    streamed.insert(Canonical(u, v));
  }
  const MutationResult added =
      service.scheduler->ApplyDelta("g", DeltaKind::kAdd, batch);
  ASSERT_TRUE(added.status.ok());
  EXPECT_TRUE(added.approx_valid);
  EXPECT_DOUBLE_EQ(added.approx_triangles,
                   static_cast<double>(MirrorTriangles(streamed)));

  // A removal taints the sampling estimator; the exact path carries on.
  const MutationResult removed = service.scheduler->ApplyDelta(
      "g", DeltaKind::kRemove, std::vector<Edge>{batch[0]});
  ASSERT_TRUE(removed.status.ok());
  EXPECT_FALSE(removed.approx_valid);
  auto snap = service.registry->DeltaState("g");
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(snap->approx_valid);
}

TEST(StreamingService, ReloadDiscardsOverlayAndResetsEpochState) {
  Env* env = Env::Default();
  const CSRGraph g = DiamondGraph();
  ServiceFixture service(env, g, "reload");
  const uint64_t count0 = service.Count();

  const MutationResult added = service.scheduler->ApplyDelta(
      "g", DeltaKind::kAdd, std::vector<Edge>{{2, 3}});
  ASSERT_TRUE(added.status.ok());
  EXPECT_EQ(service.Count(), count0 + 2);

  // Reload from disk: the overlay is gone, the base is the truth again.
  ASSERT_TRUE(service.scheduler->LoadGraph("g", service.base_path).ok());
  auto snap = service.registry->DeltaState("g");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->triangle_delta, 0);
  EXPECT_EQ(snap->edges_added, 0u);
  EXPECT_FALSE(snap->base_known);  // new incarnation, no COUNT run yet
  EXPECT_EQ(service.Count(), count0);
  snap = service.registry->DeltaState("g");
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->base_known);  // the post-reload COUNT re-recorded it
}

}  // namespace
}  // namespace opt
