// Observability-layer tests: metrics registry semantics, trace recorder
// JSON output (syntactic validity + span nesting per thread), and the
// scheduler's slow-query log.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "test_helpers.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace opt {
namespace {

// ---------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, LookupsReturnStablePointersPerName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reg.test.counter");
  Counter* b = registry.GetCounter("reg.test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("reg.test.other"));
  EXPECT_EQ(registry.GetGauge("reg.test.gauge"),
            registry.GetGauge("reg.test.gauge"));
  EXPECT_EQ(registry.GetHistogram("reg.test.hist"),
            registry.GetHistogram("reg.test.hist"));
}

TEST(MetricsRegistry, CountersAccumulateAcrossThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mt.counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 1000; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), 4000u);
}

TEST(MetricsRegistry, ExposeTextCoversEveryKindSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(3);
  registry.GetGauge("a.gauge")->Set(-7);
  registry.GetHistogram("c.hist")->Record(10);
  registry.GetHistogram("c.hist")->Record(1000);
  const std::string text = registry.ExposeText();
  EXPECT_NE(text.find("b.counter=3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("a.gauge=-7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.count=2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.min=10\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.max=1000\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.p50="), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.p99="), std::string::npos) << text;
}

TEST(MetricsRegistry, ResetAllZeroesCountersAndHistogramsOnly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("r.counter");
  Gauge* gauge = registry.GetGauge("r.gauge");
  HistogramMetric* hist = registry.GetHistogram("r.hist");
  counter->Increment(5);
  gauge->Set(11);
  hist->Record(99);
  registry.ResetAll();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 11);  // gauges describe current state
  EXPECT_EQ(hist->Snapshot().count, 0u);
}

TEST(MetricsRegistry, GlobalRegistryIsProcessWide) {
  Counter* a = Metrics().GetCounter("global.smoke");
  Counter* b = Metrics().GetCounter("global.smoke");
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Trace recorder

/// Minimal JSON syntax checker (objects, arrays, strings, numbers,
/// true/false/null) — enough to prove the trace file parses.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(Trace, DisabledTracingRecordsNothing) {
  ASSERT_EQ(CurrentTraceRecorder(), nullptr);
  { TraceSpan span("test", "invisible"); }
  TraceInstant("test", "also-invisible");
  // Nothing to assert against — the point is no crash with no recorder.
}

TEST(Trace, SpansNestAndSerializeToValidJson) {
  TraceRecorder recorder;
  StartTracing(&recorder);
  {
    TraceSpan outer("test", "outer", "\"depth\":0");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner("test", "inner", "\"depth\":1");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    TraceInstant("test", "tick", "\"n\":1");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  StopTracing();

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* tick = nullptr;
  for (const TraceEvent& event : events) {
    if (event.name == "outer") outer = &event;
    if (event.name == "inner") inner = &event;
    if (event.name == "tick") tick = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(outer->phase, 'X');
  EXPECT_EQ(inner->phase, 'X');
  EXPECT_EQ(tick->phase, 'i');
  EXPECT_EQ(outer->tid, inner->tid);  // one thread did all the work
  // inner is properly contained in outer.
  EXPECT_GE(inner->ts_micros, outer->ts_micros);
  EXPECT_LE(inner->ts_micros + inner->dur_micros,
            outer->ts_micros + outer->dur_micros);
  EXPECT_GT(inner->dur_micros, 0u);

  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
}

TEST(Trace, ConcurrentSpansKeepPerThreadNesting) {
  TraceRecorder recorder;
  StartTracing(&recorder);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 8; ++i) {
        TraceSpan outer("test", "outer");
        TraceSpan inner("test", "inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  StopTracing();

  const std::vector<TraceEvent> events = recorder.Events();
  EXPECT_EQ(events.size(), 4u * 8u * 2u);
  // Within each thread, any two complete spans are disjoint or nested —
  // never partially overlapping (that would render as garbage in
  // Perfetto and signal a broken trace clock).
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      const TraceEvent& a = events[i];
      const TraceEvent& b = events[j];
      if (a.tid != b.tid || a.phase != 'X' || b.phase != 'X') continue;
      const uint64_t a_end = a.ts_micros + a.dur_micros;
      const uint64_t b_end = b.ts_micros + b.dur_micros;
      const bool disjoint = a_end <= b.ts_micros || b_end <= a.ts_micros;
      const bool a_in_b = a.ts_micros >= b.ts_micros && a_end <= b_end;
      const bool b_in_a = b.ts_micros >= a.ts_micros && b_end <= a_end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "events " << i << " and " << j << " partially overlap";
    }
  }
  EXPECT_TRUE(JsonChecker(recorder.ToJson()).Valid());
}

TEST(Trace, EventCapDropsInsteadOfGrowing) {
  TraceRecorder recorder(/*max_events=*/4);
  StartTracing(&recorder);
  for (int i = 0; i < 10; ++i) TraceInstant("test", "e");
  StopTracing();
  EXPECT_EQ(recorder.Events().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_TRUE(JsonChecker(recorder.ToJson()).Valid());
}

TEST(Trace, WriteJsonRoundTripsThroughDisk) {
  TraceRecorder recorder;
  StartTracing(&recorder);
  { TraceSpan span("test", "disk \"quoted\" name\n"); }
  StopTracing();
  const std::string path =
      testutil::ProcessTempDir() + "/trace_roundtrip.json";
  ASSERT_TRUE(recorder.WriteJson(path).ok());
  std::string contents;
  FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  EXPECT_EQ(contents, recorder.ToJson());
  EXPECT_TRUE(JsonChecker(contents).Valid()) << contents;
}

// ---------------------------------------------------------------------
// Slow-query log

/// Captures formatted log lines for assertions.
class LogCapture {
 public:
  LogCapture() {
    SetLogSink([this](LogLevel level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back({level, line});
    });
  }
  ~LogCapture() { SetLogSink(nullptr); }

  std::vector<std::pair<LogLevel, std::string>> lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

/// Sleeps in Emit so LIST execution reliably crosses a 1 ms threshold.
class SleepySink : public TriangleSink {
 public:
  void Emit(VertexId, VertexId, std::span<const VertexId>) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
};

std::string MaterializeTriangleStore(Env* env, const std::string& tag) {
  // K5: every vertex pair connected; 10 triangles, so SleepySink::Emit
  // definitely runs.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  }
  CSRGraph g = GraphBuilder::FromEdges(edges);
  const std::string base = testutil::ProcessTempDir() + "/slowq_" + tag;
  GraphStoreOptions options;
  options.page_size = 256;
  Status s = GraphStore::Create(g, env, base, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return base;
}

TEST(SlowQueryLog, LogsAtWarnWhenOverThreshold) {
  Env* env = Env::Default();
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 1;
  options.slow_query_millis = 1;
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("k5", MaterializeTriangleStore(env, "on")).ok());

  LogCapture capture;
  SleepySink sink;
  QuerySpec spec;
  spec.graph = "k5";
  spec.kind = QueryKind::kList;
  spec.list_sink = &sink;
  const QueryResult result = scheduler.Run(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.triangles, 10u);

  EXPECT_EQ(scheduler.stats().slow_queries, 1u);
  bool found = false;
  for (const auto& [level, line] : capture.lines()) {
    if (line.find("slow query") == std::string::npos) continue;
    found = true;
    EXPECT_EQ(level, LogLevel::kWarn);
    EXPECT_NE(line.find("graph=k5"), std::string::npos) << line;
    EXPECT_NE(line.find("kind=LIST"), std::string::npos) << line;
    EXPECT_NE(line.find("queue_wait_ms="), std::string::npos) << line;
    EXPECT_NE(line.find("exec_ms="), std::string::npos) << line;
  }
  EXPECT_TRUE(found);
}

TEST(SlowQueryLog, DisabledByDefault) {
  Env* env = Env::Default();
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 1;  // slow_query_millis stays 0
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("k5", MaterializeTriangleStore(env, "off")).ok());

  LogCapture capture;
  SleepySink sink;
  QuerySpec spec;
  spec.graph = "k5";
  spec.kind = QueryKind::kList;
  spec.list_sink = &sink;
  const QueryResult result = scheduler.Run(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  EXPECT_EQ(scheduler.stats().slow_queries, 0u);
  for (const auto& [level, line] : capture.lines()) {
    EXPECT_EQ(line.find("slow query"), std::string::npos) << line;
  }
}

TEST(SlowQueryLog, QueueWaitIsReportedSeparately) {
  // With a saturated single worker, the second query's queue wait is
  // nonzero and the QueryResult carries it.
  Env* env = Env::Default();
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 1;
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("k5", MaterializeTriangleStore(env, "qw")).ok());

  SleepySink slow_sink;
  QuerySpec slow;
  slow.graph = "k5";
  slow.kind = QueryKind::kList;
  slow.list_sink = &slow_sink;
  auto first = scheduler.Submit(slow);

  SleepySink second_sink;
  QuerySpec queued = slow;
  queued.list_sink = &second_sink;
  auto second = scheduler.Submit(queued);

  const QueryResult second_result = second.get();
  ASSERT_TRUE(second_result.status.ok());
  EXPECT_GT(second_result.queue_seconds, 0.0);
  first.wait();
}

}  // namespace
}  // namespace opt
