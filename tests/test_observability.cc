// Observability-layer tests: metrics registry semantics, Prometheus
// exposition (name sanitization, label escaping, windowed rates, the
// HTTP scrape endpoint), trace recorder JSON output (syntactic validity
// + span nesting per thread), distributed-trace assembly, and the
// scheduler's slow-query log with [trace=...] correlation tags.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "obs/metrics_http.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "test_helpers.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace opt {
namespace {

// ---------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, LookupsReturnStablePointersPerName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reg.test.counter");
  Counter* b = registry.GetCounter("reg.test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("reg.test.other"));
  EXPECT_EQ(registry.GetGauge("reg.test.gauge"),
            registry.GetGauge("reg.test.gauge"));
  EXPECT_EQ(registry.GetHistogram("reg.test.hist"),
            registry.GetHistogram("reg.test.hist"));
}

TEST(MetricsRegistry, CountersAccumulateAcrossThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mt.counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 1000; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), 4000u);
}

TEST(MetricsRegistry, ExposeTextCoversEveryKindSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(3);
  registry.GetGauge("a.gauge")->Set(-7);
  registry.GetHistogram("c.hist")->Record(10);
  registry.GetHistogram("c.hist")->Record(1000);
  const std::string text = registry.ExposeText();
  EXPECT_NE(text.find("b.counter=3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("a.gauge=-7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.count=2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.min=10\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.max=1000\n"), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.p50="), std::string::npos) << text;
  EXPECT_NE(text.find("c.hist.p99="), std::string::npos) << text;
}

TEST(MetricsRegistry, ResetAllZeroesCountersAndHistogramsOnly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("r.counter");
  Gauge* gauge = registry.GetGauge("r.gauge");
  HistogramMetric* hist = registry.GetHistogram("r.hist");
  counter->Increment(5);
  gauge->Set(11);
  hist->Record(99);
  registry.ResetAll();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 11);  // gauges describe current state
  EXPECT_EQ(hist->Snapshot().count, 0u);
}

TEST(MetricsRegistry, GlobalRegistryIsProcessWide) {
  Counter* a = Metrics().GetCounter("global.smoke");
  Counter* b = Metrics().GetCounter("global.smoke");
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, SanitizeMetricNameProducesLegalIdentifiers) {
  // Dotted/dashed internal names map onto [a-zA-Z_:][a-zA-Z0-9_:]*.
  EXPECT_EQ(SanitizeMetricName("pool.fetch.hits"), "pool_fetch_hits");
  EXPECT_EQ(SanitizeMetricName("graph.g.rmat-20.vertices"),
            "graph_g_rmat_20_vertices");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName("ok_name:sub"), "ok_name:sub");
  EXPECT_EQ(SanitizeMetricName("spaces and/slashes"),
            "spaces_and_slashes");
  // Idempotent: sanitizing a sanitized name is a no-op.
  const std::string once = SanitizeMetricName("a.b-c d");
  EXPECT_EQ(SanitizeMetricName(once), once);
}

TEST(Prometheus, LabelValueEscapeRoundTrips) {
  const std::vector<std::string> values = {
      "",
      "g",
      "g.rmat-20",
      "quote\"inside",
      "back\\slash",
      "line\nbreak",
      "all\\three\"at\nonce",
      "trailing\\",
  };
  for (const std::string& value : values) {
    const std::string escaped = EscapeLabelValue(value);
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << value;
    EXPECT_EQ(UnescapeLabelValue(escaped), value) << escaped;
  }
}

TEST(Prometheus, ExposePrometheusRendersTypedFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("prom.test-counter")->Increment(7);
  registry.GetGauge("prom.gauge")->Set(-3);
  registry.GetHistogram("prom.latency-us")->Record(100);
  registry.GetHistogram("prom.latency-us")->Record(300);
  const std::string text = registry.ExposePrometheus();
  EXPECT_NE(text.find("# TYPE prom_test_counter counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("prom_test_counter 7"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("prom_gauge -3"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE prom_latency_us summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("prom_latency_us{quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("prom_latency_us_count 2"), std::string::npos)
      << text;
  // Raw (unsanitized) spellings must not leak into the exposition.
  EXPECT_EQ(text.find("prom.test-counter"), std::string::npos) << text;
}

TEST(MetricsWindowRates, ManualSamplesYieldWindowedRates) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("win.requests");
  Counter* hits = registry.GetCounter("win.hits");
  MetricsWindow window(&registry, /*slots=*/8);
  EXPECT_TRUE(window.Rates().empty());  // one sample is not a window

  window.SampleNow();
  requests->Increment(100);
  hits->Increment(25);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  window.SampleNow();

  const std::vector<MetricsWindow::Rate> rates = window.Rates();
  uint64_t requests_delta = 0;
  double requests_per_sec = 0;
  for (const MetricsWindow::Rate& rate : rates) {
    if (rate.name == "win.requests") {
      requests_delta = rate.delta;
      requests_per_sec = rate.per_second;
      EXPECT_GT(rate.window_seconds, 0.0);
    }
  }
  EXPECT_EQ(requests_delta, 100u);
  EXPECT_GT(requests_per_sec, 0.0);

  double hit_rate = 0;
  ASSERT_TRUE(window.WindowedRatio("win.hits", "win.requests", &hit_rate));
  EXPECT_DOUBLE_EQ(hit_rate, 0.25);
  // Ratio with a zero-delta denominator reports false, not inf.
  double bogus = 0;
  EXPECT_FALSE(window.WindowedRatio("win.hits", "win.absent", &bogus));

  const std::string text = window.ExposePrometheus();
  EXPECT_NE(text.find("win_requests_per_sec"), std::string::npos) << text;
  EXPECT_NE(text.find("opt_metrics_window_seconds"), std::string::npos)
      << text;
}

TEST(MetricsHttp, ServesScrapeBodyAndRejectsUnknownPaths) {
  MetricsHttpServer server(
      [] { return std::string("# TYPE x counter\nx 1\n"); });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);

  auto fetch = [&](const std::string& request_line) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string request = request_line + "\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string reply;
    char buffer[1024];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
      reply.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return reply;
  };

  const std::string ok = fetch("GET /metrics HTTP/1.0");
  EXPECT_NE(ok.find("200"), std::string::npos) << ok;
  EXPECT_NE(ok.find("text/plain"), std::string::npos) << ok;
  EXPECT_NE(ok.find("# TYPE x counter\nx 1\n"), std::string::npos) << ok;

  const std::string missing = fetch("GET /nope HTTP/1.0");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  server.Stop();
}

// ---------------------------------------------------------------------
// Trace recorder

TEST(Trace, DisabledTracingRecordsNothing) {
  ASSERT_EQ(CurrentTraceRecorder(), nullptr);
  { TraceSpan span("test", "invisible"); }
  TraceInstant("test", "also-invisible");
  // Nothing to assert against — the point is no crash with no recorder.
}

TEST(Trace, SpansNestAndSerializeToValidJson) {
  TraceRecorder recorder;
  StartTracing(&recorder);
  {
    TraceSpan outer("test", "outer", "\"depth\":0");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner("test", "inner", "\"depth\":1");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    TraceInstant("test", "tick", "\"n\":1");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  StopTracing();

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* tick = nullptr;
  for (const TraceEvent& event : events) {
    if (event.name == "outer") outer = &event;
    if (event.name == "inner") inner = &event;
    if (event.name == "tick") tick = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(outer->phase, 'X');
  EXPECT_EQ(inner->phase, 'X');
  EXPECT_EQ(tick->phase, 'i');
  EXPECT_EQ(outer->tid, inner->tid);  // one thread did all the work
  // inner is properly contained in outer.
  EXPECT_GE(inner->ts_micros, outer->ts_micros);
  EXPECT_LE(inner->ts_micros + inner->dur_micros,
            outer->ts_micros + outer->dur_micros);
  EXPECT_GT(inner->dur_micros, 0u);

  const std::string json = recorder.ToJson();
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
}

TEST(Trace, ConcurrentSpansKeepPerThreadNesting) {
  TraceRecorder recorder;
  StartTracing(&recorder);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 8; ++i) {
        TraceSpan outer("test", "outer");
        TraceSpan inner("test", "inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  StopTracing();

  const std::vector<TraceEvent> events = recorder.Events();
  EXPECT_EQ(events.size(), 4u * 8u * 2u);
  // Within each thread, any two complete spans are disjoint or nested —
  // never partially overlapping (that would render as garbage in
  // Perfetto and signal a broken trace clock).
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      const TraceEvent& a = events[i];
      const TraceEvent& b = events[j];
      if (a.tid != b.tid || a.phase != 'X' || b.phase != 'X') continue;
      const uint64_t a_end = a.ts_micros + a.dur_micros;
      const uint64_t b_end = b.ts_micros + b.dur_micros;
      const bool disjoint = a_end <= b.ts_micros || b_end <= a.ts_micros;
      const bool a_in_b = a.ts_micros >= b.ts_micros && a_end <= b_end;
      const bool b_in_a = b.ts_micros >= a.ts_micros && b_end <= a_end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "events " << i << " and " << j << " partially overlap";
    }
  }
  EXPECT_TRUE(testutil::JsonChecker(recorder.ToJson()).Valid());
}

TEST(Trace, EventCapDropsInsteadOfGrowing) {
  TraceRecorder recorder(/*max_events=*/4);
  StartTracing(&recorder);
  for (int i = 0; i < 10; ++i) TraceInstant("test", "e");
  StopTracing();
  EXPECT_EQ(recorder.Events().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_TRUE(testutil::JsonChecker(recorder.ToJson()).Valid());
}

TEST(Trace, WriteJsonRoundTripsThroughDisk) {
  TraceRecorder recorder;
  StartTracing(&recorder);
  { TraceSpan span("test", "disk \"quoted\" name\n"); }
  StopTracing();
  const std::string path =
      testutil::ProcessTempDir() + "/trace_roundtrip.json";
  ASSERT_TRUE(recorder.WriteJson(path).ok());
  std::string contents;
  FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  EXPECT_EQ(contents, recorder.ToJson());
  EXPECT_TRUE(testutil::JsonChecker(contents).Valid()) << contents;
}

TEST(Trace, DrainEmptiesTheRingAndKeepsTheDroppedTotal) {
  TraceRecorder recorder(/*max_events=*/4);
  StartTracing(&recorder);
  for (int i = 0; i < 10; ++i) TraceInstant("test", "e");
  const std::vector<TraceEvent> drained = recorder.Drain();
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_TRUE(recorder.Events().empty());
  EXPECT_EQ(recorder.dropped(), 6u);  // survives the drain
  // The ring keeps recording after a drain (TRACE_PULL is repeatable).
  TraceInstant("test", "after");
  StopTracing();
  ASSERT_EQ(recorder.Events().size(), 1u);
  EXPECT_EQ(recorder.Events()[0].name, "after");
}

TEST(Trace, SpanIdsPropagateThroughContextScopes) {
  TraceRecorder recorder;
  StartTracing(&recorder);
  const uint64_t trace_id = NewTraceId();
  ASSERT_NE(trace_id, 0u);
  uint64_t parent_id = 0;
  {
    TraceContextScope remote({trace_id, 0});
    TraceSpan parent("test", "parent");
    EXPECT_EQ(parent.trace_id(), trace_id);
    parent_id = parent.span_id();
    ASSERT_NE(parent_id, 0u);
    TraceSpan child("test", "child");
    EXPECT_EQ(child.trace_id(), trace_id);
    EXPECT_NE(child.span_id(), parent_id);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);  // scope restored
  StopTracing();

  const TraceEvent* child_event = nullptr;
  for (const TraceEvent& event : recorder.Events()) {
    if (event.name == "child") child_event = &event;
  }
  ASSERT_NE(child_event, nullptr);
  EXPECT_EQ(child_event->trace_id, trace_id);
  EXPECT_EQ(child_event->parent_span_id, parent_id);
}

TEST(Trace, AssembleTraceDrawsFlowsAcrossProcessBoundaries) {
  // Hand-built two-process dump: a router rpc span (pid 10) parents a
  // shard query span (pid 20) in the same request tree.
  ProcessTrace router;
  router.pid = 10;
  router.label = "router";
  router.unix_origin_micros = 1000;
  TraceEvent rpc;
  rpc.name = "rpc.count";
  rpc.category = "router";
  rpc.phase = 'X';
  rpc.ts_micros = 5;
  rpc.dur_micros = 500;
  rpc.tid = 1;
  rpc.trace_id = 0xbeef;
  rpc.span_id = 0x100;
  router.events.push_back(rpc);

  ProcessTrace shard;
  shard.pid = 20;
  shard.label = "shard0";
  shard.unix_origin_micros = 1200;  // later-born process, rebased
  TraceEvent query;
  query.name = "query.count";
  query.category = "service";
  query.phase = 'X';
  query.ts_micros = 50;
  query.dur_micros = 300;
  query.tid = 2;
  query.trace_id = 0xbeef;
  query.span_id = 0x200;
  query.parent_span_id = 0x100;  // the router's rpc span
  shard.events.push_back(query);

  const std::string json = AssembleTrace({router, shard});
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  // One process_name row per process.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"shard0\""), std::string::npos);
  // The cross-process parent/child pair produced a flow arrow.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;

  // Same-process parent/child draws no arrow: move the child into the
  // router process and the flow events disappear.
  ProcessTrace solo = router;
  TraceEvent local_child = query;
  solo.events.push_back(local_child);
  const std::string solo_json = AssembleTrace({solo});
  EXPECT_TRUE(testutil::JsonChecker(solo_json).Valid()) << solo_json;
  EXPECT_EQ(solo_json.find("\"ph\":\"s\""), std::string::npos) << solo_json;
}

// ---------------------------------------------------------------------
// Slow-query log

/// Captures formatted log lines for assertions.
class LogCapture {
 public:
  LogCapture() {
    SetLogSink([this](LogLevel level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back({level, line});
    });
  }
  ~LogCapture() { SetLogSink(nullptr); }

  std::vector<std::pair<LogLevel, std::string>> lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

/// Sleeps in Emit so LIST execution reliably crosses a 1 ms threshold.
class SleepySink : public TriangleSink {
 public:
  void Emit(VertexId, VertexId, std::span<const VertexId>) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
};

std::string MaterializeTriangleStore(Env* env, const std::string& tag) {
  // K5: every vertex pair connected; 10 triangles, so SleepySink::Emit
  // definitely runs.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  }
  CSRGraph g = GraphBuilder::FromEdges(edges);
  const std::string base = testutil::ProcessTempDir() + "/slowq_" + tag;
  GraphStoreOptions options;
  options.page_size = 256;
  Status s = GraphStore::Create(g, env, base, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return base;
}

TEST(SlowQueryLog, LogsAtWarnWhenOverThreshold) {
  Env* env = Env::Default();
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 1;
  options.slow_query_millis = 1;
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("k5", MaterializeTriangleStore(env, "on")).ok());

  LogCapture capture;
  SleepySink sink;
  QuerySpec spec;
  spec.graph = "k5";
  spec.kind = QueryKind::kList;
  spec.list_sink = &sink;
  const QueryResult result = scheduler.Run(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.triangles, 10u);

  EXPECT_EQ(scheduler.stats().slow_queries, 1u);
  bool found = false;
  for (const auto& [level, line] : capture.lines()) {
    if (line.find("slow query") == std::string::npos) continue;
    found = true;
    EXPECT_EQ(level, LogLevel::kWarn);
    EXPECT_NE(line.find("graph=k5"), std::string::npos) << line;
    EXPECT_NE(line.find("kind=LIST"), std::string::npos) << line;
    EXPECT_NE(line.find("queue_wait_ms="), std::string::npos) << line;
    EXPECT_NE(line.find("exec_ms="), std::string::npos) << line;
  }
  EXPECT_TRUE(found);
}

TEST(SlowQueryLog, DisabledByDefault) {
  Env* env = Env::Default();
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 1;  // slow_query_millis stays 0
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("k5", MaterializeTriangleStore(env, "off")).ok());

  LogCapture capture;
  SleepySink sink;
  QuerySpec spec;
  spec.graph = "k5";
  spec.kind = QueryKind::kList;
  spec.list_sink = &sink;
  const QueryResult result = scheduler.Run(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  EXPECT_EQ(scheduler.stats().slow_queries, 0u);
  for (const auto& [level, line] : capture.lines()) {
    EXPECT_EQ(line.find("slow query"), std::string::npos) << line;
  }
}

TEST(SlowQueryLog, QueueWaitIsReportedSeparately) {
  // With a saturated single worker, the second query's queue wait is
  // nonzero and the QueryResult carries it.
  Env* env = Env::Default();
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 1;
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("k5", MaterializeTriangleStore(env, "qw")).ok());

  SleepySink slow_sink;
  QuerySpec slow;
  slow.graph = "k5";
  slow.kind = QueryKind::kList;
  slow.list_sink = &slow_sink;
  auto first = scheduler.Submit(slow);

  SleepySink second_sink;
  QuerySpec queued = slow;
  queued.list_sink = &second_sink;
  auto second = scheduler.Submit(queued);

  const QueryResult second_result = second.get();
  ASSERT_TRUE(second_result.status.ok());
  EXPECT_GT(second_result.queue_seconds, 0.0);
  first.wait();
}

TEST(SlowQueryLog, SlowQueryLineCarriesTheRequestTraceTag) {
  // A traced request's slow-query warning leads with [trace=<hex>] so
  // log lines grep-correlate with the assembled trace tree. The tag
  // rides the ambient context captured at Submit — no recorder needed.
  Env* env = Env::Default();
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = 1;
  options.slow_query_millis = 1;
  QueryScheduler scheduler(&registry, options);
  ASSERT_TRUE(
      scheduler.LoadGraph("k5", MaterializeTriangleStore(env, "tag")).ok());

  LogCapture capture;
  SleepySink sink;
  QuerySpec spec;
  spec.graph = "k5";
  spec.kind = QueryKind::kList;
  spec.list_sink = &sink;
  {
    TraceContextScope scope({0xabc123, 0});
    const QueryResult result = scheduler.Run(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  }

  bool found = false;
  for (const auto& [level, line] : capture.lines()) {
    if (line.find("slow query") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("[trace=0000000000abc123]"), std::string::npos)
        << line;
  }
  EXPECT_TRUE(found);

  // Untraced requests keep the old spelling — no empty [trace=] stub.
  LogCapture untraced_capture;
  SleepySink untraced_sink;
  QuerySpec untraced = spec;
  untraced.list_sink = &untraced_sink;
  ASSERT_TRUE(scheduler.Run(untraced).status.ok());
  for (const auto& [level, line] : untraced_capture.lines()) {
    if (line.find("slow query") == std::string::npos) continue;
    EXPECT_EQ(line.find("[trace="), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace opt
