// Unit tests of the three framework plug points (InternalTriangles,
// CollectCandidates, ExternalTriangles) for both iterator models,
// replaying the paper's worked example of §3.2/Figure 2: the internal
// area holds n(a)..n(d); {e,f,g,h} become external candidates; the
// internal triangles are {abc, cdf} and the external ones {def, cfg,
// cgh}.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/iterator_model.h"
#include "core/page_range_view.h"
#include "core/triangle_sink.h"
#include "graph/builder.h"
#include "storage/graph_store.h"
#include "test_helpers.h"

namespace opt {
namespace {

constexpr VertexId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6, H = 7;

CSRGraph PaperGraph() {
  GraphBuilder b;
  b.AddEdge(A, B);
  b.AddEdge(A, C);
  b.AddEdge(B, C);
  b.AddEdge(C, D);
  b.AddEdge(C, F);
  b.AddEdge(C, G);
  b.AddEdge(C, H);
  b.AddEdge(D, E);
  b.AddEdge(D, F);
  b.AddEdge(E, F);
  b.AddEdge(F, G);
  b.AddEdge(G, H);
  return std::move(b).Build();
}

/// Builds a PageRangeView over the full graph so both "internal" and
/// "external" adjacency can be pulled from it; the iteration plan
/// restricts residency to [v_lo, v_hi].
class ModelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = PaperGraph();
    store_ = testutil::MakeStore(graph_, Env::Default(), "model_fixture",
                                 4096);
    pages_.resize(store_->num_pages());
    for (uint32_t pid = 0; pid < store_->num_pages(); ++pid) {
      pages_[pid].resize(store_->page_size());
      ASSERT_TRUE(store_->file()->ReadPage(pid, pages_[pid].data()).ok());
      data_.push_back(pages_[pid].data());
    }
    ASSERT_TRUE(view_.Build(*store_, 0, data_).ok());
    // The paper's iteration: n(a)..n(d) resident.
    plan_.v_lo = A;
    plan_.v_hi = D;
    plan_.pid_lo = 0;
    plan_.pid_hi = store_->num_pages() - 1;
  }

  Segment SegmentOf(VertexId v) {
    // Single page at 4096B: find v's segment in page 0.
    PageView page(data_[0], store_->page_size());
    for (uint32_t s = 0; s < page.num_slots(); ++s) {
      if (page.GetSegment(s).vertex == v) return page.GetSegment(s);
    }
    ADD_FAILURE() << "segment for vertex " << v << " not found";
    return {};
  }

  CSRGraph graph_;
  std::unique_ptr<GraphStore> store_;
  std::vector<std::vector<char>> pages_;
  std::vector<const char*> data_;
  PageRangeView view_;
  IterationPlan plan_;
};

TEST_F(ModelFixture, EdgeIteratorInternalTrianglesMatchPaper) {
  EdgeIteratorModel model;
  VectorSink sink;
  ModelScratch scratch;
  for (VertexId u = plan_.v_lo; u <= plan_.v_hi; ++u) {
    model.InternalTriangles(view_, plan_, u, &sink, &scratch);
  }
  auto triangles = sink.Sorted();
  ASSERT_EQ(triangles.size(), 2u);
  EXPECT_EQ(triangles[0], (Triangle{A, B, C}));
  EXPECT_EQ(triangles[1], (Triangle{C, D, F}));
}

TEST_F(ModelFixture, EdgeIteratorCandidatesMatchPaper) {
  EdgeIteratorModel model;
  std::vector<VertexId> candidates;
  for (VertexId u = plan_.v_lo; u <= plan_.v_hi; ++u) {
    model.CollectCandidates(plan_, SegmentOf(u), &candidates);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // §3.2: "{e, f, g, h} is identified as V_ex".
  EXPECT_EQ(candidates, (std::vector<VertexId>{E, F, G, H}));
}

TEST_F(ModelFixture, EdgeIteratorExternalTrianglesMatchPaper) {
  EdgeIteratorModel model;
  VectorSink sink;
  ModelScratch scratch;
  for (VertexId v : {E, F, G, H}) {
    AdjacencyRef adj = view_.Get(v);
    model.ExternalTriangles(view_, plan_, v, adj, &sink, &scratch);
  }
  auto triangles = sink.Sorted();
  ASSERT_EQ(triangles.size(), 3u);
  EXPECT_EQ(triangles[0], (Triangle{C, F, G}));  // cfg
  EXPECT_EQ(triangles[1], (Triangle{C, G, H}));  // cgh
  EXPECT_EQ(triangles[2], (Triangle{D, E, F}));  // def
}

TEST_F(ModelFixture, VertexIteratorSplitsTheSameFiveTriangles) {
  // VI partitions triangles differently (by the residency of the two
  // lowest vertices), but internal + external must still total the
  // paper's five.
  VertexIteratorModel model;
  VectorSink internal, external;
  ModelScratch scratch;
  for (VertexId u = plan_.v_lo; u <= plan_.v_hi; ++u) {
    model.InternalTriangles(view_, plan_, u, &internal, &scratch);
  }
  std::vector<VertexId> candidates;
  for (VertexId u = plan_.v_lo; u <= plan_.v_hi; ++u) {
    model.CollectCandidates(plan_, SegmentOf(u), &candidates);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (VertexId v : candidates) {
    model.ExternalTriangles(view_, plan_, v, view_.Get(v), &external,
                            &scratch);
  }
  std::vector<Triangle> all = internal.Sorted();
  auto ext = external.Sorted();
  all.insert(all.end(), ext.begin(), ext.end());
  std::sort(all.begin(), all.end());
  // With v_lo = 0 there are no lower-id candidates, so in this single
  // first iteration VI finds the triangles whose two lowest vertices
  // are resident.
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "no duplicates between internal and external paths";
  for (const Triangle& t : all) {
    EXPECT_LE(t.u, static_cast<VertexId>(D));  // anchored in residency
  }
}

TEST_F(ModelFixture, FullResidencyFindsEverythingInternally) {
  // When the whole graph is resident (plan covers all ids), the
  // internal path alone must produce all five triangles for both
  // models and the candidate sets must be empty.
  IterationPlan full;
  full.v_lo = 0;
  full.v_hi = graph_.num_vertices() - 1;
  full.pid_lo = 0;
  full.pid_hi = store_->num_pages() - 1;

  EdgeIteratorModel ei;
  VertexIteratorModel vi;
  for (const IteratorModel* model :
       {static_cast<const IteratorModel*>(&ei),
        static_cast<const IteratorModel*>(&vi)}) {
    VectorSink sink;
    ModelScratch scratch;
    std::vector<VertexId> candidates;
    for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
      model->InternalTriangles(view_, full, u, &sink, &scratch);
      model->CollectCandidates(full, SegmentOf(u), &candidates);
    }
    EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(graph_))
        << model->name();
    EXPECT_TRUE(candidates.empty()) << model->name();
  }
}

}  // namespace
}  // namespace opt
