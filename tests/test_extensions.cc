// Tests for the extension algorithms: compact-forward, degeneracy
// ordering, and the streaming reservoir estimator.
#include <gtest/gtest.h>

#include "baselines/approx.h"
#include "baselines/inmemory.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "graph/reorder.h"
#include "test_helpers.h"

namespace opt {
namespace {

TEST(CompactForwardTest, MatchesOracleTriangleSet) {
  for (uint64_t seed : {1, 2, 3}) {
    CSRGraph g = GenerateErdosRenyi(200, 1600, seed);
    VectorSink sink;
    CompactForwardInMemory(g, &sink);
    EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(g)) << seed;
  }
}

TEST(CompactForwardTest, SkewedGraph) {
  RmatOptions gen;
  gen.scale = 10;
  gen.edge_factor = 8;
  gen.seed = 4;
  CSRGraph g = DegreeOrder(GenerateRmat(gen)).graph;
  CountingSink forward, oracle;
  CompactForwardInMemory(g, &forward);
  EdgeIteratorInMemory(g, &oracle);
  EXPECT_EQ(forward.count(), oracle.count());
}

TEST(CompactForwardTest, EmptyAndTriangleFree) {
  CountingSink sink;
  CompactForwardInMemory(GraphBuilder::FromEdges({}), &sink);
  EXPECT_EQ(sink.count(), 0u);
  GraphBuilder b;
  for (VertexId v = 0; v + 1 < 50; ++v) b.AddEdge(v, v + 1);
  CompactForwardInMemory(std::move(b).Build(), &sink);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(DegeneracyOrderTest, CliqueDegeneracy) {
  GraphBuilder b;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  uint32_t degeneracy = 0;
  DegeneracyOrder(std::move(b).Build(), &degeneracy);
  EXPECT_EQ(degeneracy, 5u);
}

TEST(DegeneracyOrderTest, TreeDegeneracyIsOne) {
  GraphBuilder b;
  for (VertexId v = 1; v < 64; ++v) b.AddEdge(v / 2, v);  // binary tree
  uint32_t degeneracy = 0;
  DegeneracyOrder(std::move(b).Build(), &degeneracy);
  EXPECT_EQ(degeneracy, 1u);
}

TEST(DegeneracyOrderTest, SuccessorBoundHolds) {
  // The defining property: after reordering, |n_succ(v)| <= degeneracy.
  CSRGraph g = GenerateHolmeKim({.num_vertices = 1500,
                                 .edges_per_vertex = 5,
                                 .triad_probability = 0.5,
                                 .seed = 6});
  uint32_t degeneracy = 0;
  ReorderResult r = DegeneracyOrder(g, &degeneracy);
  EXPECT_GE(degeneracy, 1u);
  for (VertexId v = 0; v < r.graph.num_vertices(); ++v) {
    EXPECT_LE(r.graph.Successors(v).size(), degeneracy) << "vertex " << v;
  }
}

TEST(DegeneracyOrderTest, PreservesTriangleCount) {
  CSRGraph g = GenerateErdosRenyi(300, 2500, 8);
  ReorderResult r = DegeneracyOrder(g);
  EXPECT_EQ(testutil::OracleCount(r.graph), testutil::OracleCount(g));
}

TEST(StreamingReservoirTest, ExactWhenReservoirHoldsAllEdges) {
  CSRGraph g = GenerateErdosRenyi(200, 1500, 9);
  ApproxResult result = StreamingReservoirEstimate(g, g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(result.estimate,
                   static_cast<double>(testutil::OracleCount(g)));
}

TEST(StreamingReservoirTest, EstimateWithinToleranceAveraged) {
  CSRGraph g = GenerateHolmeKim({.num_vertices = 1200,
                                 .edges_per_vertex = 6,
                                 .triad_probability = 0.6,
                                 .seed = 10});
  const double exact = static_cast<double>(testutil::OracleCount(g));
  double sum = 0;
  constexpr int kTrials = 8;
  for (int i = 0; i < kTrials; ++i) {
    sum += StreamingReservoirEstimate(g, g.num_edges() / 2, 200 + i)
               .estimate;
  }
  EXPECT_NEAR(sum / kTrials / exact, 1.0, 0.2);
}

TEST(StreamingReservoirTest, EmptyGraph) {
  EXPECT_DOUBLE_EQ(
      StreamingReservoirEstimate(GraphBuilder::FromEdges({}), 100, 1)
          .estimate,
      0.0);
}

}  // namespace
}  // namespace opt
