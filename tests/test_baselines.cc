// Tests for all baselines: in-memory VI/EI vs brute force, AYZ counting,
// MGT, CC-Seq, CC-DS, and GraphChi-Tri vs the oracle.
#include <gtest/gtest.h>

#include "baselines/ayz.h"
#include "baselines/cc.h"
#include "baselines/graphchi_tri.h"
#include "baselines/inmemory.h"
#include "baselines/mgt.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "test_helpers.h"

namespace opt {
namespace {

CSRGraph PaperGraph() {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(2, 5);
  b.AddEdge(2, 6);
  b.AddEdge(2, 7);
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  return std::move(b).Build();
}

TEST(InMemoryTest, PaperGraphHasFiveTriangles) {
  CSRGraph g = PaperGraph();
  VectorSink sink;
  EdgeIteratorInMemory(g, &sink);
  auto triangles = sink.Sorted();
  ASSERT_EQ(triangles.size(), 5u);
  EXPECT_EQ(triangles[0], (Triangle{0, 1, 2}));  // abc
  EXPECT_EQ(triangles[1], (Triangle{2, 3, 5}));  // cdf
  EXPECT_EQ(triangles[2], (Triangle{2, 5, 6}));  // cfg
  EXPECT_EQ(triangles[3], (Triangle{2, 6, 7}));  // cgh
  EXPECT_EQ(triangles[4], (Triangle{3, 4, 5}));  // def
}

TEST(InMemoryTest, EdgeAndVertexIteratorsAgreeWithBruteForce) {
  for (uint64_t seed : {1, 2, 3}) {
    CSRGraph g = GenerateErdosRenyi(60, 400, seed);
    const uint64_t brute = BruteForceTriangleCount(g);
    CountingSink ei, vi;
    EdgeIteratorInMemory(g, &ei);
    VertexIteratorInMemory(g, &vi);
    EXPECT_EQ(ei.count(), brute) << "seed " << seed;
    EXPECT_EQ(vi.count(), brute) << "seed " << seed;
  }
}

TEST(InMemoryTest, IteratorsEmitIdenticalTriangleSets) {
  CSRGraph g = GenerateErdosRenyi(150, 1200, 9);
  VectorSink ei, vi;
  EdgeIteratorInMemory(g, &ei);
  VertexIteratorInMemory(g, &vi);
  EXPECT_EQ(ei.Sorted(), vi.Sorted());
}

TEST(InMemoryTest, ParallelMatchesSerial) {
  CSRGraph g = GenerateErdosRenyi(300, 3000, 4);
  CountingSink serial, parallel;
  EdgeIteratorInMemory(g, &serial, 1);
  EdgeIteratorInMemory(g, &parallel, 4);
  EXPECT_EQ(serial.count(), parallel.count());
}

TEST(InMemoryTest, CliqueTriangleCount) {
  // K10 has C(10,3) = 120 triangles.
  GraphBuilder b;
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) b.AddEdge(u, v);
  }
  CSRGraph g = std::move(b).Build();
  CountingSink sink;
  EdgeIteratorInMemory(g, &sink);
  EXPECT_EQ(sink.count(), 120u);
}

TEST(AyzTest, MatchesOracleAcrossThresholds) {
  CSRGraph g = GenerateErdosRenyi(200, 2500, 17);
  const uint64_t oracle = testutil::OracleCount(g);
  for (uint32_t threshold : {0u, 2u, 5u, 20u, 1000u}) {
    EXPECT_EQ(AyzTriangleCount(g, threshold), oracle)
        << "threshold " << threshold;
  }
}

TEST(AyzTest, SkewedGraph) {
  RmatOptions opts;
  opts.scale = 10;
  opts.edge_factor = 8;
  opts.seed = 3;
  CSRGraph g = GenerateRmat(opts);
  EXPECT_EQ(AyzTriangleCount(g), testutil::OracleCount(g));
}

TEST(AyzTest, StatsPartitionTriangles) {
  CSRGraph g = GenerateHolmeKim(
      {.num_vertices = 1000, .edges_per_vertex = 5,
       .triad_probability = 0.6, .seed = 8});
  AyzStats stats;
  const uint64_t total = AyzTriangleCount(g, 0, &stats);
  EXPECT_EQ(total, stats.core_triangles + stats.fringe_triangles);
  EXPECT_EQ(total, testutil::OracleCount(g));
}

TEST(MgtTest, MatchesOracle) {
  CSRGraph g = GenerateErdosRenyi(300, 3000, 21);
  auto store = testutil::MakeStore(g, Env::Default(), "mgt");
  MgtOptions options;
  options.memory_pages =
      std::max(store->MaxRecordPages(), store->num_pages() / 5);
  CountingSink sink;
  MgtStats stats;
  ASSERT_TRUE(RunMgt(store.get(), &sink, options, &stats).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
  EXPECT_GT(stats.iterations, 1u);
  // Eq. 7: MGT reads roughly (1 + iterations) * P pages.
  EXPECT_GE(stats.pages_read,
            static_cast<uint64_t>(stats.iterations) * store->num_pages());
}

TEST(MgtTest, ExactTriangleSet) {
  CSRGraph g = PaperGraph();
  auto store = testutil::MakeStore(g, Env::Default(), "mgt_exact", 64);
  MgtOptions options;
  options.memory_pages = std::max(2u, store->MaxRecordPages());
  VectorSink sink;
  ASSERT_TRUE(RunMgt(store.get(), &sink, options, nullptr).ok());
  EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(g));
}

TEST(MgtTest, SingleIterationWhenGraphFits) {
  CSRGraph g = GenerateErdosRenyi(100, 600, 2);
  auto store = testutil::MakeStore(g, Env::Default(), "mgt_fits");
  MgtOptions options;
  options.memory_pages = store->num_pages();
  CountingSink sink;
  MgtStats stats;
  ASSERT_TRUE(RunMgt(store.get(), &sink, options, &stats).ok());
  EXPECT_EQ(stats.iterations, 1u);
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
}

TEST(CcTest, SeqMatchesOracle) {
  CSRGraph g = GenerateErdosRenyi(250, 2500, 33);
  auto store = testutil::MakeStore(g, Env::Default(), "cc_seq");
  CcOptions options;
  options.memory_pages =
      std::max(store->MaxRecordPages(), store->num_pages() / 4);
  options.temp_dir = testutil::ProcessTempDir();
  CountingSink sink;
  CcStats stats;
  ASSERT_TRUE(
      RunChuCheng(store.get(), Env::Default(), &sink, options, &stats).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
  EXPECT_GT(stats.iterations, 1u);
  EXPECT_GT(stats.pages_written, 0u);  // rewrites the remainder
}

TEST(CcTest, SeqExactTriangleSet) {
  CSRGraph g = PaperGraph();
  auto store = testutil::MakeStore(g, Env::Default(), "cc_exact", 64);
  CcOptions options;
  options.memory_pages = std::max(2u, store->MaxRecordPages());
  options.temp_dir = testutil::ProcessTempDir();
  VectorSink sink;
  ASSERT_TRUE(
      RunChuCheng(store.get(), Env::Default(), &sink, options, nullptr).ok());
  EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(g));
}

TEST(CcTest, DsMatchesOracle) {
  CSRGraph g = GenerateHolmeKim(
      {.num_vertices = 400, .edges_per_vertex = 4,
       .triad_probability = 0.5, .seed = 12});
  auto store = testutil::MakeStore(g, Env::Default(), "cc_ds");
  CcOptions options;
  options.memory_pages =
      std::max(store->MaxRecordPages() * 2, store->num_pages() / 4);
  options.temp_dir = testutil::ProcessTempDir();
  options.dominating_set_order = true;
  VectorSink sink;
  ASSERT_TRUE(
      RunChuCheng(store.get(), Env::Default(), &sink, options, nullptr).ok());
  EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(g));
}

TEST(CcTest, DsHandlesHighDegreeFirstBatches) {
  // A graph with one dominant hub: CC-DS batches it first.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 100; ++leaf) b.AddEdge(0, leaf);
  for (VertexId v = 1; v < 100; ++v) b.AddEdge(v, v + 1);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "cc_ds_hub");
  CcOptions options;
  options.memory_pages = std::max(store->MaxRecordPages() * 2,
                                  store->num_pages() / 3);
  options.temp_dir = testutil::ProcessTempDir();
  options.dominating_set_order = true;
  CountingSink sink;
  ASSERT_TRUE(
      RunChuCheng(store.get(), Env::Default(), &sink, options, nullptr).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
}

TEST(GraphChiTriTest, MatchesOracle) {
  CSRGraph g = GenerateErdosRenyi(250, 2500, 44);
  auto store = testutil::MakeStore(g, Env::Default(), "graphchi");
  GraphChiTriOptions options;
  options.memory_pages =
      std::max(store->MaxRecordPages(), store->num_pages() / 4);
  options.temp_dir = testutil::ProcessTempDir();
  options.num_threads = 2;
  CountingSink sink;
  GraphChiTriStats stats;
  ASSERT_TRUE(RunGraphChiTri(store.get(), Env::Default(), &sink, options,
                             &stats)
                  .ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
  // The double-scan makes GraphChi-Tri read strictly more than one pass
  // per iteration.
  EXPECT_GT(stats.pages_read,
            static_cast<uint64_t>(store->num_pages()) * stats.iterations);
  EXPECT_GE(stats.ParallelFraction(), 0.0);
  EXPECT_LE(stats.ParallelFraction(), 1.0);
}

TEST(GraphChiTriTest, SerialAndParallelAgree) {
  CSRGraph g = GenerateErdosRenyi(200, 2000, 66);
  auto store = testutil::MakeStore(g, Env::Default(), "graphchi_par");
  GraphChiTriOptions options;
  options.memory_pages =
      std::max(store->MaxRecordPages(), store->num_pages() / 3);
  options.temp_dir = testutil::ProcessTempDir();
  options.num_threads = 1;
  CountingSink serial;
  ASSERT_TRUE(RunGraphChiTri(store.get(), Env::Default(), &serial, options,
                             nullptr)
                  .ok());
  options.num_threads = 4;
  CountingSink parallel;
  ASSERT_TRUE(RunGraphChiTri(store.get(), Env::Default(), &parallel,
                             options, nullptr)
                  .ok());
  EXPECT_EQ(serial.count(), parallel.count());
}

TEST(BaselineGuardTest, RejectUndersizedBuffers) {
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 400; ++leaf) b.AddEdge(0, leaf);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "guard");
  ASSERT_GT(store->MaxRecordPages(), 1u);
  CountingSink sink;
  MgtOptions mgt;
  mgt.memory_pages = 1;
  EXPECT_EQ(RunMgt(store.get(), &sink, mgt, nullptr).code(),
            StatusCode::kResourceExhausted);
  CcOptions cc;
  cc.memory_pages = 1;
  cc.temp_dir = testutil::ProcessTempDir();
  EXPECT_EQ(
      RunChuCheng(store.get(), Env::Default(), &sink, cc, nullptr).code(),
      StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace opt
