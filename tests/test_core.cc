// Tests for the OPT core: sinks, page-range views, iterator models, the
// ideal method, and the OPT runner in all its configurations, verified
// against the in-memory edge-iterator oracle.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/ideal.h"
#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/page_range_view.h"
#include "core/triangle_sink.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "test_helpers.h"
#include "util/stopwatch.h"

namespace opt {
namespace {

CSRGraph PaperGraph() {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(2, 5);
  b.AddEdge(2, 6);
  b.AddEdge(2, 7);
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  return std::move(b).Build();
}

TEST(CountingSinkTest, CountsAcrossEmits) {
  CountingSink sink;
  const VertexId ws1[] = {3, 4};
  const VertexId ws2[] = {9};
  sink.Emit(0, 1, ws1);
  sink.Emit(2, 5, ws2);
  EXPECT_EQ(sink.count(), 3u);
  sink.Reset();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(VectorSinkTest, SortedOutput) {
  VectorSink sink;
  const VertexId ws1[] = {7};
  const VertexId ws2[] = {3, 5};
  sink.Emit(2, 4, ws1);
  sink.Emit(0, 1, ws2);
  auto out = sink.Sorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Triangle{0, 1, 3}));
  EXPECT_EQ(out[1], (Triangle{0, 1, 5}));
  EXPECT_EQ(out[2], (Triangle{2, 4, 7}));
}

TEST(PerVertexCountSinkTest, AttributesToAllThreeVertices) {
  PerVertexCountSink sink(6);
  const VertexId ws[] = {4, 5};
  sink.Emit(1, 2, ws);  // triangles (1,2,4) and (1,2,5)
  auto counts = sink.Counts();
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(counts[5], 1u);
  EXPECT_EQ(sink.total(), 2u);
}

TEST(ListingSinkTest, WritesNestedRepresentation) {
  const std::string path = testutil::ProcessTempDir() + "/listing_sink.bin";
  {
    ListingSink sink(Env::Default(), path, /*flush_threshold=*/32);
    const VertexId ws[] = {2, 3};
    sink.Emit(0, 1, ws);
    const VertexId ws2[] = {9};
    sink.Emit(5, 7, ws2);
    ASSERT_TRUE(sink.Finish().ok());
    EXPECT_EQ(sink.triangles_written(), 3u);
    // 2 records: (12 + 8) + (12 + 4) bytes.
    EXPECT_EQ(sink.bytes_written(), 36u);
  }
  auto size = Env::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 36u);
  std::remove(path.c_str());
}

TEST(TeeSinkTest, FansOut) {
  CountingSink a;
  VectorSink b;
  TeeSink tee({&a, &b});
  const VertexId ws[] = {5};
  tee.Emit(1, 2, ws);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(PageRangeViewTest, FullGraphView) {
  CSRGraph g = PaperGraph();
  auto store = testutil::MakeStore(g, Env::Default(), "view_full");
  std::vector<std::vector<char>> pages(store->num_pages());
  std::vector<const char*> data;
  for (uint32_t pid = 0; pid < store->num_pages(); ++pid) {
    pages[pid].resize(store->page_size());
    ASSERT_TRUE(store->file()->ReadPage(pid, pages[pid].data()).ok());
    data.push_back(pages[pid].data());
  }
  PageRangeView view;
  ASSERT_TRUE(view.Build(*store, 0, data).ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_TRUE(view.HasFull(v));
    AdjacencyRef ref = view.Get(v);
    auto expected = g.Neighbors(v);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                           ref.all.begin(), ref.all.end()));
    auto expected_succ = g.Successors(v);
    EXPECT_TRUE(std::equal(expected_succ.begin(), expected_succ.end(),
                           ref.succ().begin(), ref.succ().end()));
  }
}

TEST(PageRangeViewTest, PartialViewExcludesBoundaryRecords) {
  CSRGraph g = GenerateErdosRenyi(120, 900, 5);
  auto store = testutil::MakeStore(g, Env::Default(), "view_partial");
  ASSERT_GT(store->num_pages(), 3u);
  // Middle pages only.
  const uint32_t lo = 1, hi = store->num_pages() - 2;
  std::vector<std::vector<char>> pages;
  std::vector<const char*> data;
  for (uint32_t pid = lo; pid <= hi; ++pid) {
    pages.emplace_back(store->page_size());
    ASSERT_TRUE(store->file()->ReadPage(pid, pages.back().data()).ok());
  }
  for (auto& p : pages) data.push_back(p.data());
  PageRangeView view;
  ASSERT_TRUE(view.Build(*store, lo, data).ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const bool fully_inside = store->FirstPageOfVertex(v) >= lo &&
                              store->LastPageOfVertex(v) <= hi;
    EXPECT_EQ(view.HasFull(v), fully_inside) << "vertex " << v;
    if (fully_inside) {
      auto expected = g.Neighbors(v);
      AdjacencyRef ref = view.Get(v);
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                             ref.all.begin(), ref.all.end()));
    }
  }
}

TEST(IdealTest, MatchesOracleOnPaperGraph) {
  CSRGraph g = PaperGraph();
  auto store = testutil::MakeStore(g, Env::Default(), "ideal_paper");
  EdgeIteratorModel model;
  VectorSink sink;
  IdealStats stats;
  ASSERT_TRUE(RunIdeal(store.get(), model, &sink, 1, &stats).ok());
  EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(g));
  EXPECT_GT(stats.elapsed_seconds, 0.0);
}

TEST(IdealTest, VertexIteratorModelAgrees) {
  CSRGraph g = GenerateErdosRenyi(200, 2000, 77);
  auto store = testutil::MakeStore(g, Env::Default(), "ideal_vi");
  VertexIteratorModel model;
  VectorSink sink;
  ASSERT_TRUE(RunIdeal(store.get(), model, &sink, 1, nullptr).ok());
  EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(g));
}

struct OptConfig {
  const char* name;
  bool macro_overlap;
  bool morphing;
  uint32_t threads;
  bool vertex_iterator;
};

class OptRunnerTest : public ::testing::TestWithParam<OptConfig> {};

TEST_P(OptRunnerTest, MatchesOracleOnPaperGraph) {
  const OptConfig& config = GetParam();
  CSRGraph g = PaperGraph();
  auto store = testutil::MakeStore(g, Env::Default(), "opt_paper", 64);
  EXPECT_GT(store->num_pages(), 1u);  // forces multiple iterations

  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), 2u);
  options.m_ex = 2;
  options.macro_overlap = config.macro_overlap;
  options.thread_morphing = config.morphing;
  options.num_threads = config.threads;

  EdgeIteratorModel ei;
  VertexIteratorModel vi;
  const IteratorModel* model =
      config.vertex_iterator ? static_cast<IteratorModel*>(&vi)
                             : static_cast<IteratorModel*>(&ei);
  OptRunner runner(store.get(), model, options);
  VectorSink sink;
  OptRunStats stats;
  Status s = runner.Run(&sink, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.Sorted(), testutil::OracleTriangles(g));
  EXPECT_GE(stats.iterations, 1u);
}

TEST_P(OptRunnerTest, MatchesOracleOnRandomGraph) {
  const OptConfig& config = GetParam();
  CSRGraph g = GenerateErdosRenyi(400, 4000, 1234);
  auto store = testutil::MakeStore(g, Env::Default(), "opt_random");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 8);
  options.m_ex = options.m_in;
  options.macro_overlap = config.macro_overlap;
  options.thread_morphing = config.morphing;
  options.num_threads = config.threads;

  EdgeIteratorModel ei;
  VertexIteratorModel vi;
  const IteratorModel* model =
      config.vertex_iterator ? static_cast<IteratorModel*>(&vi)
                             : static_cast<IteratorModel*>(&ei);
  OptRunner runner(store.get(), model, options);
  CountingSink sink;
  OptRunStats stats;
  Status s = runner.Run(&sink, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
  EXPECT_GT(stats.iterations, 1u);  // buffer forces several iterations
}

INSTANTIATE_TEST_SUITE_P(
    Configs, OptRunnerTest,
    ::testing::Values(
        OptConfig{"serial_ei", false, false, 1, false},
        OptConfig{"overlap_ei", true, false, 2, false},
        OptConfig{"overlap_morph_ei", true, true, 2, false},
        OptConfig{"overlap_morph4_ei", true, true, 4, false},
        OptConfig{"serial_vi", false, false, 1, true},
        OptConfig{"overlap_vi", true, false, 2, true},
        OptConfig{"overlap_morph_vi", true, true, 2, true},
        OptConfig{"overlap_morph4_vi", true, true, 4, true}),
    [](const ::testing::TestParamInfo<OptConfig>& info) {
      return std::string(info.param.name);
    });

TEST(OptRunnerTest, SpanningAdjacencyLists) {
  // Hub vertices whose lists span multiple 256-byte pages.
  GraphBuilder b;
  for (VertexId leaf = 2; leaf < 300; ++leaf) {
    b.AddEdge(0, leaf);
    b.AddEdge(1, leaf);
  }
  b.AddEdge(0, 1);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "opt_spanning");
  ASSERT_GT(store->MaxRecordPages(), 1u);

  OptOptions options;
  options.m_in = store->MaxRecordPages() + 1;
  options.m_ex = store->MaxRecordPages() + 1;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  // Triangles: (0, 1, leaf) for each of the 298 leaves.
  EXPECT_EQ(sink.count(), 298u);
}

TEST(OptRunnerTest, RejectsTooSmallInternalArea) {
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 500; ++leaf) b.AddEdge(0, leaf);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "opt_smallbuf");
  OptOptions options;
  options.m_in = 1;
  options.m_ex = 1;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  EXPECT_EQ(runner.Run(&sink, nullptr).code(),
            StatusCode::kResourceExhausted);
}

TEST(OptRunnerTest, RejectsZeroBuffers) {
  CSRGraph g = PaperGraph();
  auto store = testutil::MakeStore(g, Env::Default(), "opt_zero");
  OptOptions options;
  options.m_in = 0;
  options.m_ex = 0;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  EXPECT_TRUE(runner.Run(&sink, nullptr).IsInvalidArgument());
}

TEST(OptRunnerTest, EmptyGraph) {
  CSRGraph g = GraphBuilder::FromEdges({});
  auto store = testutil::MakeStore(g, Env::Default(), "opt_empty");
  OptOptions options;
  options.m_in = 2;
  options.m_ex = 2;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(OptRunnerTest, TriangleFreeGraph) {
  // A path has no triangles.
  GraphBuilder b;
  for (VertexId v = 0; v + 1 < 200; ++v) b.AddEdge(v, v + 1);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "opt_path");
  OptOptions options;
  options.m_in = 2;
  options.m_ex = 2;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(OptRunnerTest, PropagatesInjectedIoErrors) {
  FaultInjectionEnv fenv(Env::Default());
  CSRGraph g = GenerateErdosRenyi(300, 3000, 55);
  auto store = testutil::MakeStore(g, &fenv, "opt_fault");
  fenv.FailReadsAfter(static_cast<int64_t>(fenv.read_count()) + 10);

  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 10);
  options.m_ex = options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  // Unrecoverable device faults surface as the typed Unavailable (the
  // degraded-query contract), not a raw IOError.
  EXPECT_TRUE(runner.Run(&sink, nullptr).IsUnavailable());
}

TEST(OptRunnerTest, CacheSavingsReported) {
  // With a tight buffer, the backward external-load order should make
  // some internal loads of iteration i+1 hit pages buffered at i.
  CSRGraph g = GenerateErdosRenyi(600, 9000, 99);
  auto store = testutil::MakeStore(g, Env::Default(), "opt_cache");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 6);
  options.m_ex = options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  OptRunStats stats;
  ASSERT_TRUE(runner.Run(&sink, &stats).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
  EXPECT_GT(stats.internal_cache_hits + stats.external_cache_hits, 0u);
}

TEST(OptRunnerTest, BackwardLoadOrderSavesMoreReads) {
  // Algorithm 4's backward external order must yield at least as many
  // buffer-pool savings as ascending order, with identical results.
  CSRGraph g = GenerateErdosRenyi(600, 9000, 77);
  auto store = testutil::MakeStore(g, Env::Default(), "opt_order");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 6);
  options.m_ex = options.m_in;
  options.macro_overlap = false;
  options.thread_morphing = false;
  EdgeIteratorModel model;

  auto run = [&](bool backward) {
    options.backward_external_order = backward;
    OptRunner runner(store.get(), &model, options);
    CountingSink sink;
    OptRunStats stats;
    EXPECT_TRUE(runner.Run(&sink, &stats).ok());
    EXPECT_EQ(sink.count(), testutil::OracleCount(g));
    return stats.internal_cache_hits;
  };
  const uint64_t backward_hits = run(true);
  const uint64_t ascending_hits = run(false);
  EXPECT_GT(backward_hits, ascending_hits);
}

TEST(OptRunnerTest, StatsAccounting) {
  CSRGraph g = GenerateErdosRenyi(300, 3000, 42);
  auto store = testutil::MakeStore(g, Env::Default(), "opt_stats");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 4);
  options.m_ex = options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  OptRunStats stats;
  ASSERT_TRUE(runner.Run(&sink, &stats).ok());
  EXPECT_EQ(stats.per_iteration.size(), stats.iterations);
  // Internal loads cover every page at least once across iterations.
  EXPECT_GE(stats.internal_pages_read + stats.internal_cache_hits,
            store->num_pages());
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GE(stats.ParallelFraction(), 0.0);
  EXPECT_LE(stats.ParallelFraction(), 1.0);
}

TEST(OptRunnerTest, MinimalExternalAreaStressesChaining) {
  // m_ex = 1 forces every external chunk through the L_later chain one
  // page at a time (maximum Algorithm 9 pressure).
  CSRGraph g = GenerateErdosRenyi(300, 3000, 13);
  auto store = testutil::MakeStore(g, Env::Default(), "opt_mex1");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 8);
  options.m_ex = 1;
  options.num_threads = 2;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
}

TEST(OptRunnerTest, StarGraphHeavyCandidates) {
  // A star: hub connected to everyone, no triangles, but the hub's
  // record floods the candidate sets.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 600; ++leaf) b.AddEdge(0, leaf);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "opt_star");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), 2u);
  options.m_ex = 2;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(OptRunnerTest, IsolatedVerticesOnly) {
  // Vertices 0..9 exist because vertex 10-11 share the only edge.
  CSRGraph g = GraphBuilder::FromEdges({{10, 11}});
  auto store = testutil::MakeStore(g, Env::Default(), "opt_isolated");
  OptOptions options;
  options.m_in = 2;
  options.m_ex = 2;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(OptRunnerTest, VertexIteratorWithTinyExternalArea) {
  CSRGraph g = GenerateErdosRenyi(250, 2200, 19);
  auto store = testutil::MakeStore(g, Env::Default(), "opt_vi_mex1");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 6);
  options.m_ex = 1;
  options.num_threads = 3;
  VertexIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
}

TEST(OptRunnerTest, ThrottledEnvOverlapBeatsSyncAtDepth) {
  // With injected latency, OPT_serial at queue depth 8 must finish the
  // same work in less time than at depth 1 — the micro-level overlap.
  ThrottledEnv env(Env::Default(), 50);
  CSRGraph g = GenerateErdosRenyi(600, 9000, 23);
  auto store = testutil::MakeStore(g, &env, "opt_throttle");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 8);
  options.m_ex = options.m_in;
  options.macro_overlap = false;
  options.thread_morphing = false;
  EdgeIteratorModel model;

  auto run_with_depth = [&](uint32_t depth) {
    options.io_queue_depth = depth;
    OptRunner runner(store.get(), &model, options);
    CountingSink sink;
    Stopwatch watch;
    EXPECT_TRUE(runner.Run(&sink, nullptr).ok());
    EXPECT_EQ(sink.count(), testutil::OracleCount(g));
    return watch.ElapsedSeconds();
  };
  const double slow = run_with_depth(1);
  const double fast = run_with_depth(8);
  EXPECT_LT(fast, slow);  // deep queue hides injected latency
}

TEST(OptRunnerTest, ListingSinkIntegration) {
  CSRGraph g = GenerateErdosRenyi(200, 1500, 7);
  auto store = testutil::MakeStore(g, Env::Default(), "opt_listing");
  const std::string out_path = testutil::ProcessTempDir() + "/opt_listing_out.bin";
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 4);
  options.m_ex = options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink counter;
  {
    ListingSink listing(Env::Default(), out_path);
    TeeSink tee({&counter, &listing});
    ASSERT_TRUE(runner.Run(&tee, nullptr).ok());
    EXPECT_EQ(listing.triangles_written(), counter.count());
    EXPECT_GT(listing.bytes_written(), 0u);
  }
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace opt
