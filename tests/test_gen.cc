// Tests for the synthetic graph generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/stats.h"

namespace opt {
namespace {

bool IsSimple(const CSRGraph& g) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.Neighbors(v);
    if (!std::is_sorted(nbrs.begin(), nbrs.end())) return false;
    if (std::adjacent_find(nbrs.begin(), nbrs.end()) != nbrs.end()) {
      return false;  // duplicate neighbor
    }
    if (std::binary_search(nbrs.begin(), nbrs.end(), v)) return false;
    for (VertexId u : nbrs) {
      if (!g.HasEdge(u, v)) return false;  // symmetry
    }
  }
  return true;
}

TEST(ErdosRenyiTest, ExactEdgeCount) {
  CSRGraph g = GenerateErdosRenyi(1000, 5000, 7);
  EXPECT_EQ(g.num_edges(), 5000u);
  EXPECT_TRUE(IsSimple(g));
}

TEST(ErdosRenyiTest, Deterministic) {
  CSRGraph a = GenerateErdosRenyi(500, 2000, 3);
  CSRGraph b = GenerateErdosRenyi(500, 2000, 3);
  EXPECT_EQ(a.adjacency(), b.adjacency());
  CSRGraph c = GenerateErdosRenyi(500, 2000, 4);
  EXPECT_NE(a.adjacency(), c.adjacency());
}

TEST(ErdosRenyiTest, ClampsToCompleteGraph) {
  CSRGraph g = GenerateErdosRenyi(5, 1000, 1);
  EXPECT_EQ(g.num_edges(), 10u);  // C(5,2)
}

TEST(ErdosRenyiTest, DegenerateInputs) {
  EXPECT_EQ(GenerateErdosRenyi(0, 10, 1).num_vertices(), 0u);
  EXPECT_EQ(GenerateErdosRenyi(1, 10, 1).num_edges(), 0u);
}

TEST(RmatTest, ProducesSimpleGraph) {
  RmatOptions opts;
  opts.scale = 10;
  opts.edge_factor = 8;
  opts.seed = 11;
  CSRGraph g = GenerateRmat(opts);
  EXPECT_TRUE(IsSimple(g));
  EXPECT_GT(g.num_edges(), (1u << 10));  // plenty of edges survive dedup
}

TEST(RmatTest, Deterministic) {
  RmatOptions opts;
  opts.scale = 9;
  opts.seed = 5;
  CSRGraph a = GenerateRmat(opts);
  CSRGraph b = GenerateRmat(opts);
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(RmatTest, SkewedDegreesVersusUniform) {
  RmatOptions skewed;
  skewed.scale = 12;
  skewed.edge_factor = 8;
  skewed.seed = 2;
  CSRGraph rmat = GenerateRmat(skewed);

  CSRGraph er =
      GenerateErdosRenyi(1u << 12, rmat.num_edges(), 2);
  // The R-MAT max degree should far exceed the Erdős–Rényi one.
  EXPECT_GT(rmat.max_degree(), 2 * er.max_degree());
}

TEST(RmatTest, UniformQuadrantsApproximateErdosRenyi) {
  RmatOptions opts;
  opts.scale = 10;
  opts.edge_factor = 8;
  opts.a = opts.b = opts.c = opts.d = 0.25;
  opts.noise = 0.0;
  opts.seed = 9;
  CSRGraph g = GenerateRmat(opts);
  // Degrees concentrate: max degree within a small factor of the mean.
  GraphStats stats = ComputeStats(g);
  EXPECT_LT(stats.max_degree, stats.avg_degree * 5);
}

double MeasuredClustering(const CSRGraph& g) {
  PerVertexCountSink sink(g.num_vertices());
  EdgeIteratorInMemory(g, &sink);
  return AverageClusteringCoefficient(g, sink.Counts());
}

TEST(HolmeKimTest, ProducesSimpleGraph) {
  HolmeKimOptions opts;
  opts.num_vertices = 2000;
  opts.edges_per_vertex = 4;
  opts.triad_probability = 0.5;
  opts.seed = 13;
  CSRGraph g = GenerateHolmeKim(opts);
  EXPECT_TRUE(IsSimple(g));
  EXPECT_EQ(g.num_vertices(), 2000u);
}

TEST(HolmeKimTest, TriadProbabilityRaisesClustering) {
  HolmeKimOptions low;
  low.num_vertices = 3000;
  low.edges_per_vertex = 5;
  low.triad_probability = 0.05;
  low.seed = 21;
  HolmeKimOptions high = low;
  high.triad_probability = 0.9;
  const double c_low = MeasuredClustering(GenerateHolmeKim(low));
  const double c_high = MeasuredClustering(GenerateHolmeKim(high));
  EXPECT_GT(c_high, c_low + 0.1);
}

TEST(HolmeKimTest, Deterministic) {
  HolmeKimOptions opts;
  opts.num_vertices = 500;
  opts.seed = 3;
  CSRGraph a = GenerateHolmeKim(opts);
  CSRGraph b = GenerateHolmeKim(opts);
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(HolmeKimTest, CalibrationHelperMonotone) {
  const double p1 = TriadProbabilityForClustering(0.1, 5);
  const double p2 = TriadProbabilityForClustering(0.3, 5);
  EXPECT_LE(p1, p2);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p2, 1.0);
}

}  // namespace
}  // namespace opt
