// Tests for the triangle-based analysis extensions: k-truss
// decomposition and 4-clique counting/listing.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "analysis/clique4.h"
#include "analysis/ktruss.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "test_helpers.h"

namespace opt {
namespace {

CSRGraph Clique(VertexId k) {
  GraphBuilder b;
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

TEST(KTrussTest, CliqueHasTrussK) {
  // Every edge of K_k lies in k-2 triangles even after any peeling
  // sequence, so the whole clique is the k-truss.
  for (VertexId k : {3, 4, 5, 6}) {
    KTrussResult result = KTrussDecomposition(Clique(k));
    EXPECT_EQ(result.max_truss, static_cast<uint32_t>(k)) << "K_" << k;
    for (uint32_t t : result.truss) EXPECT_EQ(t, static_cast<uint32_t>(k));
  }
}

TEST(KTrussTest, TriangleFreeGraphIsTwoTruss) {
  GraphBuilder b;
  for (VertexId v = 0; v + 1 < 20; ++v) b.AddEdge(v, v + 1);
  KTrussResult result = KTrussDecomposition(std::move(b).Build());
  EXPECT_EQ(result.max_truss, 2u);
  for (uint32_t t : result.truss) EXPECT_EQ(t, 2u);
}

TEST(KTrussTest, CliqueWithPendantEdge) {
  // K5 plus a pendant edge: clique edges are 5-truss, the pendant is 2.
  GraphBuilder b;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(0, 5);
  KTrussResult result = KTrussDecomposition(std::move(b).Build());
  EXPECT_EQ(result.max_truss, 5u);
  for (size_t e = 0; e < result.edges.size(); ++e) {
    if (result.edges[e] == std::pair<VertexId, VertexId>{0, 5}) {
      EXPECT_EQ(result.truss[e], 2u);
    } else {
      EXPECT_EQ(result.truss[e], 5u);
    }
  }
}

TEST(KTrussTest, TwoCliquesSharedEdge) {
  // Two K4s sharing the edge (0,1): all edges end up in the 4-truss.
  GraphBuilder b;
  for (VertexId u : {0, 1, 2, 3}) {
    for (VertexId v : {0, 1, 2, 3}) {
      if (u < v) b.AddEdge(u, v);
    }
  }
  for (VertexId u : {0, 1, 4, 5}) {
    for (VertexId v : {0, 1, 4, 5}) {
      if (u < v) b.AddEdge(u, v);
    }
  }
  KTrussResult result = KTrussDecomposition(std::move(b).Build());
  EXPECT_EQ(result.max_truss, 4u);
}

uint64_t EdgeSupport(const CSRGraph& g, VertexId u, VertexId v) {
  uint64_t count = 0;
  for (VertexId w : g.Neighbors(u)) {
    if (w != v && g.HasEdge(v, w)) ++count;
  }
  return count;
}

TEST(KTrussTest, TrussNeverExceedsSupportPlusTwo) {
  CSRGraph g = GenerateHolmeKim({.num_vertices = 500,
                                 .edges_per_vertex = 4,
                                 .triad_probability = 0.6,
                                 .seed = 5});
  KTrussResult result = KTrussDecomposition(g);
  for (size_t e = 0; e < result.edges.size(); ++e) {
    const auto [u, v] = result.edges[e];
    const uint64_t support = EdgeSupport(g, u, v);
    EXPECT_LE(result.truss[e], support + 2);
    EXPECT_GE(result.truss[e], 2u);
  }
}

TEST(Clique4Test, CliqueCounts) {
  // K_k contains C(k, 4) 4-cliques.
  EXPECT_EQ(Count4Cliques(Clique(3)), 0u);
  EXPECT_EQ(Count4Cliques(Clique(4)), 1u);
  EXPECT_EQ(Count4Cliques(Clique(5)), 5u);
  EXPECT_EQ(Count4Cliques(Clique(6)), 15u);
  EXPECT_EQ(Count4Cliques(Clique(8)), 70u);
}

TEST(Clique4Test, CountMatchesBruteForce) {
  CSRGraph g = GenerateErdosRenyi(60, 500, 3);
  uint64_t brute = 0;
  const VertexId n = g.num_vertices();
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (VertexId c = b + 1; c < n; ++c) {
        if (!g.HasEdge(a, c) || !g.HasEdge(b, c)) continue;
        for (VertexId d = c + 1; d < n; ++d) {
          if (g.HasEdge(a, d) && g.HasEdge(b, d) && g.HasEdge(c, d)) {
            ++brute;
          }
        }
      }
    }
  }
  EXPECT_EQ(Count4Cliques(g), brute);
}

TEST(Clique4Test, ParallelMatchesSerial) {
  CSRGraph g = GenerateHolmeKim({.num_vertices = 800,
                                 .edges_per_vertex = 5,
                                 .triad_probability = 0.7,
                                 .seed = 9});
  EXPECT_EQ(Count4Cliques(g, 1), Count4Cliques(g, 4));
}

TEST(Clique4Test, ListingMatchesCountAndIsOrdered) {
  CSRGraph g = GenerateErdosRenyi(80, 900, 8);
  std::set<std::tuple<VertexId, VertexId, VertexId, VertexId>> seen;
  List4Cliques(g, [&](VertexId a, VertexId b, VertexId c, VertexId d) {
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_LT(c, d);
    EXPECT_TRUE(seen.emplace(a, b, c, d).second) << "duplicate clique";
  });
  EXPECT_EQ(seen.size(), Count4Cliques(g));
}

}  // namespace
}  // namespace opt
