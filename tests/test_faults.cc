// Deterministic fault-injection tests: the FaultPlan/FaultInjectingEnv
// machinery itself, the async-I/O retry path it exercises, the typed
// Unavailable degradation contract of OptRunner/QueryScheduler, the
// buffer pool's wedged-waiter timeout, and StoreBuilder crash
// consistency (torn writes caught at open). Every failing assertion
// carries the plan's one-line spec so chaos results reproduce via
// `opt_server --fault-plan "<spec>"` or FaultPlan::Parse.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/erdos_renyi.h"
#include "graph/csr_graph.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/graph_store.h"
#include "storage/page_file.h"
#include "test_helpers.h"
#include "util/metrics.h"

namespace opt {
namespace {

// ---------------------------------------------------------------------
// FaultPlan parsing

TEST(FaultPlan, ParsesFullSpecAndRoundTrips) {
  const std::string spec =
      "seed=42,read_error_p=0.05,transient=2,torn_read_p=0.01,"
      "latency_p=0.1,latency_us=500,fail_reads_after=100,"
      "write_fail_after=8192,silent_write_loss=1,path_filter=.pages";
  auto plan = FaultPlan::Parse(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_DOUBLE_EQ(plan->read_error_p, 0.05);
  EXPECT_EQ(plan->transient, 2u);
  EXPECT_DOUBLE_EQ(plan->torn_read_p, 0.01);
  EXPECT_DOUBLE_EQ(plan->latency_p, 0.1);
  EXPECT_EQ(plan->latency_us, 500u);
  EXPECT_EQ(plan->fail_reads_after, 100);
  EXPECT_EQ(plan->write_fail_after, 8192u);
  EXPECT_TRUE(plan->silent_write_loss);
  EXPECT_EQ(plan->path_filter, ".pages");

  // ToString must be re-parseable to an identical plan (the repro
  // contract: any printed spec reproduces the run).
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), plan->ToString());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("bogus_key=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("read_error_p=notanumber").ok());
  EXPECT_FALSE(FaultPlan::Parse("read_error_p=1.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("=3").ok());
  EXPECT_FALSE(FaultPlan::Parse("seed").ok());
  EXPECT_TRUE(FaultPlan::Parse("").ok());  // all defaults
}

TEST(FaultPlan, IntegerFieldsKeepFull64BitPrecision) {
  // seed and write_fail_after are uint64: a strtod parse would silently
  // change values above 2^53, so a 64-bit seed printed by ToString()
  // would replay a different plan.
  auto plan = FaultPlan::Parse(
      "seed=18446744073709551615,write_fail_after=9007199254740993");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 18446744073709551615ull);
  EXPECT_EQ(plan->write_fail_after, 9007199254740993ull);  // 2^53 + 1
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->seed, plan->seed);
  EXPECT_EQ(reparsed->write_fail_after, plan->write_fail_after);
}

TEST(FaultPlan, RejectsNegativeUnsignedFields) {
  // A negative double cast to an unsigned type is UB; the parser must
  // reject the sign outright rather than wrap or misbehave.
  EXPECT_FALSE(FaultPlan::Parse("seed=-5").ok());
  EXPECT_FALSE(FaultPlan::Parse("transient=-1").ok());
  EXPECT_FALSE(FaultPlan::Parse("write_fail_after=-1").ok());
  EXPECT_FALSE(FaultPlan::Parse("latency_us=-200").ok());
  EXPECT_FALSE(FaultPlan::Parse("transient=4294967296").ok());  // > uint32
  // fail_reads_after is signed; -1 is its documented "disarmed" value.
  auto plan = FaultPlan::Parse("fail_reads_after=-1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->fail_reads_after, -1);
}

TEST(FaultPlan, ProbabilitiesRoundTripBitExactly) {
  // The repro contract is exact: a fuzzed plan's printed spec must
  // parse back to the identical plan, including probabilities that are
  // not exactly representable in 6 significant digits.
  FaultPlan plan;
  plan.seed = 0x9E3779B97F4A7C15ull;
  plan.read_error_p = 0.1;
  plan.torn_read_p = 1.0 / 3.0;
  plan.latency_p = 0.05;
  plan.latency_us = 123;
  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->seed, plan.seed);
  EXPECT_EQ(reparsed->read_error_p, plan.read_error_p);
  EXPECT_EQ(reparsed->torn_read_p, plan.torn_read_p);
  EXPECT_EQ(reparsed->latency_p, plan.latency_p);
  EXPECT_EQ(reparsed->ToString(), plan.ToString());
}

// ---------------------------------------------------------------------
// Determinism of the injection stream

TEST(FaultInjectingEnv, DecisionsAreAPureFunctionOfSeedPathOffset) {
  // Two independently constructed envs with the same plan must fault
  // the exact same (offset) set — determinism is what makes a chaos
  // failure reproducible from the one-line spec.
  Env* base = Env::Default();
  const std::string path =
      testutil::ProcessTempDir() + "/fault_det.pages";
  {
    auto file = base->OpenWritable(path);
    ASSERT_TRUE(file.ok());
    std::string blob(4096, 'x');
    ASSERT_TRUE((*file)->Append(Slice(blob.data(), blob.size())).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto plan = FaultPlan::Parse("seed=7,read_error_p=0.5,transient=0");
  ASSERT_TRUE(plan.ok());

  const auto fault_pattern = [&](FaultInjectingEnv* env) {
    std::vector<bool> failed;
    auto file = env->OpenRandomAccess(path);
    EXPECT_TRUE(file.ok());
    char buf[64];
    for (uint64_t off = 0; off < 4096; off += 64) {
      failed.push_back(!(*file)->Read(off, sizeof(buf), buf).ok());
    }
    return failed;
  };
  FaultInjectingEnv env_a(base, *plan);
  FaultInjectingEnv env_b(base, *plan);
  const std::vector<bool> pattern_a = fault_pattern(&env_a);
  const std::vector<bool> pattern_b = fault_pattern(&env_b);
  EXPECT_EQ(pattern_a, pattern_b);
  // p=0.5 over 64 locations: both outcomes must occur.
  EXPECT_NE(std::count(pattern_a.begin(), pattern_a.end(), true), 0);
  EXPECT_NE(std::count(pattern_a.begin(), pattern_a.end(), false), 0);
  // A different seed must give a different pattern.
  auto other = FaultPlan::Parse("seed=8,read_error_p=0.5,transient=0");
  ASSERT_TRUE(other.ok());
  FaultInjectingEnv env_c(base, *other);
  EXPECT_NE(fault_pattern(&env_c), pattern_a);
}

TEST(FaultInjectingEnv, TransientFaultsHealAfterConfiguredAttempts) {
  Env* base = Env::Default();
  const std::string path =
      testutil::ProcessTempDir() + "/fault_heal.pages";
  {
    auto file = base->OpenWritable(path);
    ASSERT_TRUE(file.ok());
    std::string blob(256, 'y');
    ASSERT_TRUE((*file)->Append(Slice(blob.data(), blob.size())).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto plan = FaultPlan::Parse("seed=3,read_error_p=1,transient=2");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv env(base, *plan);
  auto file = env.OpenRandomAccess(path);
  ASSERT_TRUE(file.ok());
  char buf[64];
  EXPECT_FALSE((*file)->Read(0, sizeof(buf), buf).ok());  // attempt 1
  EXPECT_FALSE((*file)->Read(0, sizeof(buf), buf).ok());  // attempt 2
  EXPECT_TRUE((*file)->Read(0, sizeof(buf), buf).ok());   // healed
  // ResetAttempts re-arms the location.
  env.ResetAttempts();
  EXPECT_FALSE((*file)->Read(0, sizeof(buf), buf).ok());
  EXPECT_EQ(env.stats().injected_read_errors.load(), 3u);
}

// ---------------------------------------------------------------------
// Retry path: transient faults heal inside the I/O engine

TEST(FaultRecovery, TransientPlanYieldsExactCountWithRetriesAndNoGiveups) {
  // The acceptance scenario: every page read fails exactly once, the
  // engine's bounded retry absorbs all of it, and the run finishes with
  // the exact triangle count — io.retries > 0, io.giveups == 0.
  CSRGraph g = GenerateErdosRenyi(300, 3600, 17);
  const uint64_t oracle = testutil::OracleCount(g);
  auto plan = FaultPlan::Parse(
      "seed=11,read_error_p=1,transient=1,path_filter=.pages");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(Env::Default(), *plan);
  fenv.set_enabled(false);
  auto store = testutil::MakeStore(g, &fenv, "transient_exact");
  fenv.set_enabled(true);

  Counter* retries = Metrics().GetCounter("io.retries");
  Counter* giveups = Metrics().GetCounter("io.giveups");
  const uint64_t retries_before = retries->value();
  const uint64_t giveups_before = giveups->value();

  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 6);
  options.m_ex = options.m_in;
  options.num_threads = 3;
  options.io_retry.backoff_base_micros = 20;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  Status s = runner.Run(&sink, nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString() << " under --fault-plan \""
                      << plan->ToString() << "\"";
  EXPECT_EQ(sink.count(), oracle);
  EXPECT_GT(retries->value(), retries_before);
  EXPECT_EQ(giveups->value(), giveups_before);
  EXPECT_GT(fenv.stats().injected_read_errors.load(), 0u);
}

TEST(FaultRecovery, TornReadsAreCaughtByCrcAndHealedByReread) {
  // Torn reads report OK at the device layer; page CRC validation
  // inside the retry loop must catch them, and the reread (the fault is
  // transient) must heal to the exact count.
  CSRGraph g = GenerateErdosRenyi(200, 2000, 23);
  const uint64_t oracle = testutil::OracleCount(g);
  auto plan = FaultPlan::Parse(
      "seed=5,torn_read_p=1,transient=1,path_filter=.pages");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(Env::Default(), *plan);
  fenv.set_enabled(false);
  auto store = testutil::MakeStore(g, &fenv, "torn_heal");
  fenv.set_enabled(true);

  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 6);
  options.m_ex = options.m_in;
  options.validate_pages = true;  // CRC validation is the torn-read net
  options.io_retry.backoff_base_micros = 20;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  Status s = runner.Run(&sink, nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.count(), oracle);
  EXPECT_GT(fenv.stats().injected_torn_reads.load(), 0u);
}

TEST(FaultRecovery, LatencySpikesDelayButNeverCorrupt) {
  CSRGraph g = GenerateErdosRenyi(150, 1200, 29);
  const uint64_t oracle = testutil::OracleCount(g);
  auto plan = FaultPlan::Parse(
      "seed=2,latency_p=1,latency_us=100,path_filter=.pages");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(Env::Default(), *plan);
  fenv.set_enabled(false);
  auto store = testutil::MakeStore(g, &fenv, "latency");
  fenv.set_enabled(true);

  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 4);
  options.m_ex = options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), oracle);
  EXPECT_GT(fenv.stats().injected_latency.load(), 0u);
}

// ---------------------------------------------------------------------
// Degradation: persistent faults surface as typed Unavailable and the
// shared pool recovers for unrelated work

TEST(FaultDegradation, PersistentPlanReturnsUnavailableAndPoolRecovers) {
  CSRGraph g = GenerateErdosRenyi(250, 2800, 31);
  const uint64_t oracle = testutil::OracleCount(g);
  auto plan = FaultPlan::Parse(
      "seed=19,read_error_p=1,transient=0,path_filter=.pages");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(Env::Default(), *plan);
  fenv.set_enabled(false);
  auto store = testutil::MakeStore(g, &fenv, "persist_degrade");
  fenv.set_enabled(true);

  BufferPool shared(store->page_size(), 96);
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 6);
  options.m_ex = options.m_in;
  options.shared_pool = &shared;
  options.io_retry.max_attempts = 2;
  options.io_retry.backoff_base_micros = 20;
  EdgeIteratorModel model;
  {
    OptRunner runner(store.get(), &model, options);
    CountingSink sink;
    const Status s = runner.Run(&sink, nullptr);
    ASSERT_TRUE(s.IsUnavailable())
        << s.ToString() << " under --fault-plan \"" << plan->ToString()
        << "\"";
  }
  // The shared pool must come out of the failed run clean: no frame
  // left pinned or stuck kInFlight. Heal the device and re-run against
  // the very same pool.
  fenv.set_enabled(false);
  {
    OptRunner runner(store.get(), &model, options);
    CountingSink sink;
    const Status s = runner.Run(&sink, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(sink.count(), oracle);
  }
}

TEST(FaultDegradation, SchedulerMarksUnavailableQueriesDegraded) {
  Env* base = Env::Default();
  CSRGraph g = GenerateErdosRenyi(200, 2200, 37);
  const uint64_t oracle = testutil::OracleCount(g);
  auto plan = FaultPlan::Parse(
      "seed=23,read_error_p=1,transient=0,path_filter=.pages");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(base, *plan);

  fenv.set_enabled(false);
  const std::string store_path = [&] {
    const std::string path =
        testutil::ProcessTempDir() + "/sched_degraded";
    GraphStoreOptions store_options;
    store_options.page_size = 256;
    EXPECT_TRUE(GraphStore::Create(g, &fenv, path, store_options).ok());
    return path;
  }();

  GraphRegistry registry(&fenv);
  SchedulerOptions scheduler_options;
  scheduler_options.enable_result_cache = false;
  QueryScheduler scheduler(&registry, scheduler_options);
  ASSERT_TRUE(scheduler.LoadGraph("g", store_path).ok());

  fenv.set_enabled(true);
  QuerySpec spec;
  spec.graph = "g";
  const QueryResult hurt = scheduler.Run(spec);
  EXPECT_TRUE(hurt.status.IsUnavailable()) << hurt.status.ToString();
  EXPECT_TRUE(hurt.degraded);
  EXPECT_EQ(scheduler.stats().degraded, 1u);

  // Degradation is per query, not per process: heal the device and the
  // same scheduler + shared registry pool serve the exact answer.
  fenv.set_enabled(false);
  const QueryResult healed = scheduler.Run(spec);
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();
  EXPECT_EQ(healed.triangles, oracle);
  EXPECT_FALSE(healed.degraded);
}

// ---------------------------------------------------------------------
// Wedged-waiter regression: WaitValid must not hang forever on a frame
// whose owning reader died before MarkValid/MarkFailed

TEST(BufferPoolFaults, WaitValidTimesOutWhenReaderNeverPublishes) {
  BufferPool pool(256, 4);
  const PageKey key = MakePageKey(0, 7);
  auto owned = pool.AllocateForRead(key);
  ASSERT_TRUE(owned.ok());
  Frame* frame = *owned;

  // A second query finds the page in flight and waits — but the "reader"
  // (us) never publishes. The bounded wait must surface Unavailable
  // instead of deadlocking the waiter.
  auto waiter = pool.Fetch(key);
  ASSERT_TRUE(waiter.ok());
  ASSERT_EQ(waiter->outcome, BufferPool::FetchOutcome::kInFlight);
  const Status w = pool.WaitValid(waiter->frame, /*timeout_millis=*/50);
  EXPECT_TRUE(w.IsUnavailable()) << w.ToString();

  // The timeout evicted the wedged page: a fresh fetch re-owns the read
  // rather than piling onto the dead frame.
  pool.Unpin(waiter->frame);
  pool.Unpin(frame);
  auto refetch = pool.Fetch(key);
  ASSERT_TRUE(refetch.ok());
  EXPECT_EQ(refetch->outcome, BufferPool::FetchOutcome::kMiss);
  pool.MarkValid(refetch->frame);
  pool.Unpin(refetch->frame);
}

TEST(BufferPoolFaults, WaitValidStillReturnsPromptlyOnLatePublish) {
  BufferPool pool(256, 4);
  const PageKey key = MakePageKey(0, 9);
  auto owned = pool.AllocateForRead(key);
  ASSERT_TRUE(owned.ok());
  Frame* frame = *owned;
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.MarkValid(frame);
  });
  // Generous bound: the publish lands well inside it.
  const Status w = pool.WaitValid(frame, /*timeout_millis=*/5000);
  publisher.join();
  EXPECT_TRUE(w.ok()) << w.ToString();
  pool.Unpin(frame);
}

TEST(BufferPoolFaults, InFlightFrameIsNotRecycledAfterWaiterTimeout) {
  // Regression: WaitValid's timeout evicts the page so fresh fetches
  // re-read it, but nothing distinguishes a dead reader from a merely
  // slow one (queueing + backoff can exceed any timeout). If the
  // abandoning pins were the last ones, the frame would return to the
  // free list while the I/O worker still writes into it, and the late
  // MarkValid would publish another page's frame with the wrong bytes.
  // The engine's own pin — held from Submit to publication — must keep
  // the frame out of circulation: with a 1-frame pool, allocation fails
  // until the slow read actually completes.
  Env* base = Env::Default();
  const std::string path =
      testutil::ProcessTempDir() + "/inflight_pin.pages";
  {
    auto writer = PageFileWriter::Create(base, path, 256);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    std::vector<char> page(256, 'z');
    ASSERT_TRUE((*writer)->Append(page.data()).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  // Every read stalls half a second: plenty of room for the waiter to
  // time out and abandon while the read is genuinely in flight.
  auto plan = FaultPlan::Parse("seed=1,latency_p=1,latency_us=500000");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(base, *plan);
  auto file = PageFile::Open(&fenv, path, 256);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  BufferPool pool(256, 1);
  AsyncIoEngine engine(1);
  CompletionQueue queue;
  const PageKey key = MakePageKey(0, 0);
  auto owned = pool.AllocateForRead(key);
  ASSERT_TRUE(owned.ok());
  Frame* frame = *owned;

  Status read_status = Status::Internal("callback never ran");
  ReadRequest request;
  request.file = file->get();
  request.first_pid = 0;
  request.page_count = 1;
  request.frames = {frame};
  request.completion_queue = &queue;
  request.pool = &pool;
  request.callback = [&](const Status& s) { read_status = s; };
  engine.Submit(std::move(request));

  // A concurrent query waits briefly, gives up, and abandons its pin;
  // the submitter's error path then unpins too.
  auto waiter = pool.Fetch(key);
  ASSERT_TRUE(waiter.ok());
  ASSERT_EQ(waiter->outcome, BufferPool::FetchOutcome::kInFlight);
  EXPECT_TRUE(pool.WaitValid(waiter->frame, 20).IsUnavailable());
  pool.Unpin(waiter->frame);
  pool.Unpin(frame);

  // The engine pin is now the only one left; the frame must not be
  // allocatable to another page while the read is still in flight.
  EXPECT_EQ(pool.Fetch(MakePageKey(0, 1)).status().code(),
            StatusCode::kResourceExhausted);

  // Once the read completes (publication, then the engine unpin, then
  // the completion), the frame is reclaimable again.
  while (true) {
    if (auto task = queue.PopFor(1000000)) {
      (*task)();
      break;
    }
  }
  EXPECT_TRUE(read_status.ok()) << read_status.ToString();
  auto refetch = pool.Fetch(MakePageKey(0, 1));
  ASSERT_TRUE(refetch.ok()) << refetch.status().ToString();
  EXPECT_EQ(refetch->outcome, BufferPool::FetchOutcome::kMiss);
  pool.MarkValid(refetch->frame);
  pool.Unpin(refetch->frame);
}

// ---------------------------------------------------------------------
// Crash consistency: a build torn mid-write must be detected at open

TEST(CrashConsistency, SilentTornWriteIsDetectedAtOpen) {
  // Power-loss simulation: the writer believes every append landed
  // (silent_write_loss), but the .pages stream tears mid-build. The
  // sidecar metadata then disagrees with the data file, and Open must
  // refuse the partial store.
  Env* base = Env::Default();
  CSRGraph g = GenerateErdosRenyi(220, 2400, 41);
  const std::string path = testutil::ProcessTempDir() + "/crash_silent";
  auto plan = FaultPlan::Parse(
      "seed=1,write_fail_after=1024,silent_write_loss=1,path_filter=.pages");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(base, *plan);
  GraphStoreOptions options;
  options.page_size = 256;
  // The build "succeeds" — exactly what a crash looks like to the
  // process that died after its writes were acknowledged.
  ASSERT_TRUE(GraphStore::Create(g, &fenv, path, options).ok());
  EXPECT_GT(fenv.stats().write_bytes_lost.load(), 0u);

  auto reopened = GraphStore::Open(base, path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_FALSE(reopened.status().IsIOError())
      << "expected a corruption-class detection, got "
      << reopened.status().ToString();
}

TEST(CrashConsistency, LoudTornWriteFailsTheBuild) {
  Env* base = Env::Default();
  CSRGraph g = GenerateErdosRenyi(220, 2400, 43);
  const std::string path = testutil::ProcessTempDir() + "/crash_loud";
  auto plan = FaultPlan::Parse(
      "seed=1,write_fail_after=1024,path_filter=.pages");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEnv fenv(base, *plan);
  GraphStoreOptions options;
  options.page_size = 256;
  const Status s = GraphStore::Create(g, &fenv, path, options);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(CrashConsistency, PageCrcVerificationCatchesInPlaceCorruption) {
  // Sizes and the meta sidecar can line up perfectly after a torn
  // sector lands inside an already-counted page; only the per-page CRC
  // walk catches that. Open(verify_pages=true) is the gate.
  Env* base = Env::Default();
  CSRGraph g = GenerateErdosRenyi(200, 2000, 47);
  const std::string path = testutil::ProcessTempDir() + "/crash_crc";
  GraphStoreOptions options;
  options.page_size = 256;
  ASSERT_TRUE(GraphStore::Create(g, base, path, options).ok());

  // Garble a few bytes in the middle of page 1 in place.
  {
    std::fstream file(GraphStore::PagesPath(path),
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(256 + 100);
    const unsigned char junk[8] = {0xDE, 0xAD, 0xBE, 0xEF,
                                   0xDE, 0xAD, 0xBE, 0xEF};
    file.write(reinterpret_cast<const char*>(junk), sizeof(junk));
  }

  // The cheap open (size + meta checks only) cannot see it...
  auto lax = GraphStore::Open(base, path);
  ASSERT_TRUE(lax.ok()) << lax.status().ToString();
  // ...the verifying open must.
  auto strict = GraphStore::Open(base, path, /*verify_pages=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption())
      << strict.status().ToString();
  EXPECT_TRUE((*lax)->VerifyAllPages().IsCorruption());
}

}  // namespace
}  // namespace opt
