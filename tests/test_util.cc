// Unit tests for the utility substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <cstdlib>

#include "util/blocking_queue.h"
#include "util/cli.h"
#include "util/crc32.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace opt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk unplugged");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: disk unplugged");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
}

Status FailingFunction() { return Status::NotFound("nope"); }

Status Propagates() {
  OPT_RETURN_IF_ERROR(FailingFunction());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates().IsNotFound());
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::InvalidArgument("bad");
  return 42;
}

Status UseValue(bool fail, int* out) {
  OPT_ASSIGN_OR_RETURN(*out, MakeValue(fail));
  return Status::OK();
}

TEST(ResultTest, ValueAndError) {
  auto good = MakeValue(false);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = MakeValue(true);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseValue(false, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseValue(true, &out).IsInvalidArgument());
}

TEST(SliceTest, BasicOperations) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random64 rng(123);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random64 rng(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(10);
  q.Close();
  EXPECT_FALSE(q.Push(11));
  EXPECT_EQ(*q.Pop(), 10);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(5);
  EXPECT_EQ(*q.TryPop(), 5);
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  Stopwatch watch;
  EXPECT_FALSE(q.PopFor(1000).has_value());
  EXPECT_GE(watch.ElapsedMicros(), 500);
}

TEST(BlockingQueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (q.Pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelFor(5, 5, 4, [&](size_t) { FAIL(); });
  ParallelFor(7, 3, 4, [&](size_t) { FAIL(); });
}

TEST(ParallelForTest, SingleThreadInline) {
  std::vector<int> order;
  ParallelFor(0, 5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v : {1, 2, 4, 8, 16}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 16u);
  EXPECT_DOUBLE_EQ(h.Mean(), 31.0 / 5.0);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a, b;
  a.Add(10);
  b.Add(20);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 30u);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h;
  for (uint64_t i = 0; i < 1000; ++i) h.Add(i);
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.99));
}

TEST(HistogramSnapshotTest, EmptySnapshotReportsZeros) {
  const HistogramSnapshot s = Histogram().Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.P99(), 0.0);
}

TEST(HistogramSnapshotTest, SingleSampleQuantilesClampToTheValue) {
  Histogram h;
  h.Add(1000);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 1000u);
  // Every quantile of a one-sample distribution is that sample; the
  // within-bucket interpolation must not leak bucket boundaries.
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(s.P50(), 1000.0);
  EXPECT_DOUBLE_EQ(s.P99(), 1000.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 1000.0);
}

TEST(HistogramSnapshotTest, SingleSampleEveryQuantileIsTheSample) {
  Histogram h;
  h.Add(7);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.P50(), 7.0);
  EXPECT_DOUBLE_EQ(s.P95(), 7.0);
  EXPECT_DOUBLE_EQ(s.P99(), 7.0);
}

TEST(HistogramSnapshotTest, TwoSamplesQuantilesPickRealSamples) {
  Histogram h;
  h.Add(10);
  h.Add(1000);
  const HistogramSnapshot s = h.Snapshot();
  // Nearest-rank: p50 is the 1st of 2 samples, p95/p99 the 2nd. The old
  // fractional-target interpolation reported ~973 for p95 (90% of the
  // way through the wrong bucket) — a number that matches no sample.
  EXPECT_DOUBLE_EQ(s.P50(), 10.0);
  EXPECT_DOUBLE_EQ(s.P95(), 1000.0);
  EXPECT_DOUBLE_EQ(s.P99(), 1000.0);
}

TEST(HistogramSnapshotTest, TenSamplesQuantilesInterpolateMidBuckets) {
  Histogram h;
  for (uint64_t v = 10; v <= 100; v += 10) h.Add(v);
  const HistogramSnapshot s = h.Snapshot();
  // Rank 5 of 10 lands in bucket [32,64) (holding 40,50,60) behind 3
  // earlier samples: interpolate 2/3 of the way through the bucket.
  EXPECT_DOUBLE_EQ(s.P50(), 32.0 + (2.0 / 3.0) * 32.0);
  // Ranks ceil(9.5)=10 and ceil(9.9)=10 are the largest sample: exact.
  EXPECT_DOUBLE_EQ(s.P95(), 100.0);
  EXPECT_DOUBLE_EQ(s.P99(), 100.0);
}

TEST(HistogramSnapshotTest, OverflowBucketStaysWithinMinMax) {
  Histogram h;
  h.Add(~0ull);  // lands in the overflow bucket (bucket 63)
  h.Add(1ull << 62);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 2u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double value = s.Quantile(q);
    EXPECT_GE(value, static_cast<double>(s.min)) << "q=" << q;
    EXPECT_LE(value, static_cast<double>(s.max)) << "q=" << q;
  }
}

TEST(HistogramSnapshotTest, MergeMatchesDirectAccumulation) {
  Histogram a, b, direct;
  for (uint64_t v : {1, 5, 9, 100}) {
    a.Add(v);
    direct.Add(v);
  }
  for (uint64_t v : {0, 2, 7000, 123456}) {
    b.Add(v);
    direct.Add(v);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot expected = direct.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.min, expected.min);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_DOUBLE_EQ(merged.P95(), expected.P95());
}

TEST(HistogramSnapshotTest, MergeWithEmptyIsIdentityEitherWay) {
  Histogram h;
  h.Add(42);
  h.Add(7);
  const HistogramSnapshot original = h.Snapshot();

  HistogramSnapshot merged = h.Snapshot();
  merged.Merge(HistogramSnapshot());  // empty other: no-op
  EXPECT_EQ(merged.count, original.count);
  EXPECT_EQ(merged.min, original.min);
  EXPECT_EQ(merged.max, original.max);

  HistogramSnapshot empty;  // empty self: adopts other's min/max
  empty.Merge(original);
  EXPECT_EQ(empty.count, original.count);
  EXPECT_EQ(empty.min, 7u);
  EXPECT_EQ(empty.max, 42u);
}

// Regression: Reset() must publish a whole fresh histogram in one swap
// under the lock. An earlier field-by-field clear let a concurrent
// Snapshot() pair the old state's count with the new state's zero sum
// (or vice versa), producing torn snapshots like count>0 with sum==0.
// Recording a single constant makes tearing detectable exactly:
// every consistent snapshot satisfies sum == kValue * count, min/max
// are kValue whenever count > 0, and an empty snapshot is all zeros.
TEST(HistogramMetricTest, ResetNeverTearsConcurrentSnapshots) {
  constexpr uint64_t kValue = 37;
  constexpr int kRounds = 20000;
  HistogramMetric metric;
  std::atomic<bool> stop{false};
  std::atomic<int> tears{0};

  std::thread recorder([&] {
    while (!stop.load(std::memory_order_relaxed)) metric.Record(kValue);
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) metric.Reset();
  });

  for (int i = 0; i < kRounds; ++i) {
    const HistogramSnapshot s = metric.Snapshot();
    if (s.sum != kValue * s.count) ++tears;
    if (s.count == 0 && (s.min != 0 || s.max != 0)) ++tears;
    if (s.count > 0 && (s.min != kValue || s.max != kValue)) ++tears;
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
  resetter.join();

  EXPECT_EQ(tears.load(), 0)
      << "Snapshot observed a half-reset histogram state";
}

TEST(LoggingTest, InitLogLevelFromEnvParsesNamesAndNumbers) {
  const LogLevel original = GetLogLevel();
  ::setenv("OPT_LOG_LEVEL", "error", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ::setenv("OPT_LOG_LEVEL", "DEBUG", 1);  // case-insensitive
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  ::setenv("OPT_LOG_LEVEL", "2", 1);  // numeric form
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);

  SetLogLevel(LogLevel::kInfo);
  ::setenv("OPT_LOG_LEVEL", "bogus", 1);  // unparsable: level untouched
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  ::unsetenv("OPT_LOG_LEVEL");  // unset: level untouched
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  SetLogLevel(original);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c(0, "123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, DetectsBitFlip) {
  char data[64];
  for (int i = 0; i < 64; ++i) data[i] = static_cast<char>(i * 7);
  const uint32_t before = Crc32c(0, data, sizeof(data));
  data[33] ^= 0x10;
  EXPECT_NE(before, Crc32c(0, data, sizeof(data)));
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* s = "incremental-checksum-data-0123456789";
  const size_t n = 36;
  const uint32_t one_shot = Crc32c(0, s, n);
  uint32_t crc = Crc32c(0, s, 10);
  // Note: our Crc32c chains by passing the previous value.
  crc = Crc32c(crc, s + 10, n - 10);
  EXPECT_EQ(crc, one_shot);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<uint64_t>(42)), "42");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(-7)), "-7");
}

TEST(CommandLineTest, ParsesFlagForms) {
  // "--beta 2" consumes the next token as its value; a flag followed by
  // another flag (or end of line) is boolean.
  const char* argv[] = {"prog", "--alpha=1", "--beta",      "2",
                        "pos1", "--gamma",   "--delta=x y"};
  auto cl = CommandLine::Parse(7, const_cast<char**>(argv));
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl->GetInt("alpha", 0), 1);
  EXPECT_EQ(cl->GetInt("beta", 0), 2);
  EXPECT_TRUE(cl->GetBool("gamma", false));
  EXPECT_EQ(cl->GetString("delta"), "x y");
  ASSERT_EQ(cl->positional().size(), 1u);
  EXPECT_EQ(cl->positional()[0], "pos1");
}

TEST(CommandLineTest, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  auto cl = CommandLine::Parse(1, const_cast<char**>(argv));
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl->GetInt("missing", 99), 99);
  EXPECT_EQ(cl->GetDouble("missing", 2.5), 2.5);
  EXPECT_FALSE(cl->Has("missing"));
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(w.ElapsedSeconds(), 0.005);
}

TEST(TimeAccumulatorTest, AccumulatesIntervals) {
  TimeAccumulator acc;
  acc.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  acc.Stop();
  const double first = acc.TotalSeconds();
  EXPECT_GT(first, 0.0);
  acc.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  acc.Stop();
  EXPECT_GT(acc.TotalSeconds(), first);
}

}  // namespace
}  // namespace opt
