// Differential tests for the whole triangulation stack: OPT's count and
// sorted triangle listing must equal the in-memory baseline on seeded
// R-MAT / Erdős–Rényi / Holme–Kim graphs across the full configuration
// matrix of {m_in/m_ex splits, thread counts, thread morphing,
// backward external order, intersection kernel}. Fault-injection
// variants re-run OPT end-to-end with randomized read-fault offsets and
// with seeded FaultPlans, asserting each run either surfaces the typed
// Unavailable or produces the exact result — never a silently wrong
// count. Failing fault trials print a one-line `--fault-plan` repro.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/hub_bitmap.h"
#include "graph/intersect.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "test_helpers.h"
#include "util/random.h"

namespace opt {
namespace {

CSRGraph MakeRmat(uint64_t seed) {
  RmatOptions options;
  options.scale = 8;
  options.edge_factor = 6;
  options.seed = seed;
  return GenerateRmat(options);
}

CSRGraph MakeHolmeKim(uint64_t seed) {
  HolmeKimOptions options;
  options.num_vertices = 350;
  options.edges_per_vertex = 4;
  options.triad_probability = 0.6;
  options.seed = seed;
  return GenerateHolmeKim(options);
}

struct Split {
  const char* name;
  uint32_t m_in;
  uint32_t m_ex;
};

/// An even paper-default split and a skewed minimal-internal split.
std::vector<Split> MakeSplits(const GraphStore& store) {
  const uint32_t even =
      std::max(store.MaxRecordPages() * 2, store.num_pages() / 5);
  return {{"even", even, even},
          {"skewed", std::max(store.MaxRecordPages(), 2u),
           std::max(2u, store.num_pages() / 3)}};
}

std::string ConfigLabel(const Split& split, uint32_t threads, bool morph,
                        bool backward, IntersectKernel kernel) {
  return std::string("split=") + split.name +
         " threads=" + std::to_string(threads) +
         " morph=" + (morph ? "on" : "off") +
         " backward=" + (backward ? "on" : "off") +
         " kernel=" + IntersectKernelName(kernel);
}

OptOptions MakeOptions(const Split& split, uint32_t threads, bool morph,
                       bool backward, IntersectKernel kernel) {
  OptOptions options;
  options.m_in = split.m_in;
  options.m_ex = split.m_ex;
  options.num_threads = threads;
  options.macro_overlap = threads > 1;  // threads=1 maps to OPT_serial
  options.thread_morphing = morph;
  options.backward_external_order = backward;
  options.kernel = kernel;
  return options;
}

class DifferentialTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // options.kernel installs process-wide; restore auto-selection.
    ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto).ok());
  }
};

TEST_F(DifferentialTest, RmatFullConfigMatrixMatchesInMemoryBaseline) {
  CSRGraph g = MakeRmat(42);
  const auto oracle = testutil::OracleTriangles(g);
  ASSERT_GT(oracle.size(), 0u);
  auto store = testutil::MakeStore(g, Env::Default(), "diff_rmat", 256);
  EdgeIteratorModel model;
  for (const Split& split : MakeSplits(*store)) {
    for (uint32_t threads : {1u, 2u, 4u}) {
      for (bool morph : {false, true}) {
        for (bool backward : {false, true}) {
          for (IntersectKernel kernel :
               {IntersectKernel::kScalar, IntersectKernel::kAuto}) {
            const std::string label =
                ConfigLabel(split, threads, morph, backward, kernel);
            SCOPED_TRACE(label);
            OptRunner runner(
                store.get(), &model,
                MakeOptions(split, threads, morph, backward, kernel));
            VectorSink sink;
            Status s = runner.Run(&sink, nullptr);
            ASSERT_TRUE(s.ok()) << s.ToString();
            ASSERT_EQ(sink.Sorted(), oracle);
          }
        }
      }
    }
  }
}

TEST_F(DifferentialTest, ErdosRenyiTrimmedMatrixMatchesInMemoryBaseline) {
  CSRGraph g = GenerateErdosRenyi(400, 1600, 7);
  const auto oracle = testutil::OracleTriangles(g);
  auto store = testutil::MakeStore(g, Env::Default(), "diff_er", 256);
  EdgeIteratorModel model;
  const auto splits = MakeSplits(*store);
  // Trimmed matrix: both splits, extreme thread counts, kernels; morph
  // and backward toggled together (the full cross runs on R-MAT above).
  for (const Split& split : splits) {
    for (uint32_t threads : {1u, 4u}) {
      for (bool toggles : {false, true}) {
        for (IntersectKernel kernel :
             {IntersectKernel::kScalar, IntersectKernel::kAuto}) {
          const std::string label =
              ConfigLabel(split, threads, toggles, toggles, kernel);
          SCOPED_TRACE(label);
          OptRunner runner(
              store.get(), &model,
              MakeOptions(split, threads, toggles, toggles, kernel));
          VectorSink sink;
          Status s = runner.Run(&sink, nullptr);
          ASSERT_TRUE(s.ok()) << s.ToString();
          ASSERT_EQ(sink.Sorted(), oracle);
        }
      }
    }
  }
}

TEST_F(DifferentialTest, HolmeKimTrimmedMatrixMatchesInMemoryBaseline) {
  CSRGraph g = MakeHolmeKim(9);
  const auto oracle = testutil::OracleTriangles(g);
  ASSERT_GT(oracle.size(), 0u);  // triad closure guarantees triangles
  auto store = testutil::MakeStore(g, Env::Default(), "diff_hk", 256);
  EdgeIteratorModel model;
  for (const Split& split : MakeSplits(*store)) {
    for (uint32_t threads : {1u, 2u}) {
      for (IntersectKernel kernel :
           {IntersectKernel::kScalar, IntersectKernel::kAuto}) {
        const std::string label =
            ConfigLabel(split, threads, true, true, kernel);
        SCOPED_TRACE(label);
        OptRunner runner(store.get(), &model,
                         MakeOptions(split, threads, true, true, kernel));
        VectorSink sink;
        Status s = runner.Run(&sink, nullptr);
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_EQ(sink.Sorted(), oracle);
      }
    }
  }
}

TEST_F(DifferentialTest, VertexIteratorModelAgreesUnderForcedKernels) {
  // The vertex-iterator instantiation shares the same intersection
  // kernels through a different access pattern.
  CSRGraph g = MakeRmat(11);
  const auto oracle = testutil::OracleTriangles(g);
  auto store = testutil::MakeStore(g, Env::Default(), "diff_vi", 256);
  VertexIteratorModel model;
  const auto splits = MakeSplits(*store);
  for (IntersectKernel kernel :
       {IntersectKernel::kScalar, IntersectKernel::kAuto}) {
    SCOPED_TRACE(IntersectKernelName(kernel));
    OptRunner runner(store.get(), &model,
                     MakeOptions(splits[0], 3, true, true, kernel));
    VectorSink sink;
    Status s = runner.Run(&sink, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(sink.Sorted(), oracle);
  }
}

TEST_F(DifferentialTest, HubSplitSweepBitIdenticalAcrossSplitPoints) {
  // Property: the hub/tail split point is a pure performance knob. For
  // every split — off, all-hubs (degree 0), p90, p99, auto — and both
  // bitmap kernels, OPT's count AND sorted listing must be bit-identical
  // to the in-memory oracle on the skewed R-MAT and clustered Holme–Kim
  // graphs, serial and threaded.
  struct SweepGraph {
    const char* name;
    CSRGraph graph;
  };
  const SweepGraph graphs[] = {{"rmat", MakeRmat(42)},
                               {"holme_kim", MakeHolmeKim(9)}};
  EdgeIteratorModel model;
  for (const SweepGraph& sg : graphs) {
    const auto oracle = testutil::OracleTriangles(sg.graph);
    ASSERT_GT(oracle.size(), 0u);
    auto store = testutil::MakeStore(sg.graph, Env::Default(),
                                     std::string("diff_hub_") + sg.name,
                                     256);
    const auto splits = MakeSplits(*store);
    for (IntersectKernel kernel :
         {IntersectKernel::kBitmapScalar, IntersectKernel::kBitmap}) {
      if (!IntersectKernelSupported(kernel)) continue;
      for (const char* hub_split : {"off", "0", "p90", "p99", "auto"}) {
        for (uint32_t threads : {1u, 3u}) {
          const std::string label =
              std::string(sg.name) + " hub_split=" + hub_split + " " +
              ConfigLabel(splits[threads == 1 ? 0 : 1], threads, true,
                          true, kernel);
          SCOPED_TRACE(label);
          OptOptions options = MakeOptions(splits[threads == 1 ? 0 : 1],
                                           threads, true, true, kernel);
          auto spec = HubSplitSpec::Parse(hub_split);
          ASSERT_TRUE(spec.ok()) << spec.status().ToString();
          options.hub_split = *spec;
          OptRunner runner(store.get(), &model, options);
          VectorSink sink;
          OptRunStats stats;
          Status s = runner.Run(&sink, &stats);
          ASSERT_TRUE(s.ok()) << s.ToString();
          ASSERT_EQ(sink.Sorted(), oracle);
          if (std::string(hub_split) == "0") {
            // All-hubs split: every internal vertex owns a bitmap, so
            // the run must actually have built some.
            EXPECT_GT(stats.hub_bitmaps_built, 0u);
            EXPECT_GT(stats.hub_bitmap_peak_bytes, 0u);
          } else if (std::string(hub_split) == "off") {
            EXPECT_EQ(stats.hub_bitmaps_built, 0u);
          }
        }
      }
    }
  }
}

TEST_F(DifferentialTest, StoreComputeDegreesMatchesCsrGraph) {
  // The hub split point is resolved from GraphStore::ComputeDegrees();
  // cross-check the page-scan against the in-memory CSR degrees, and
  // the nearest-rank percentile rule against a direct count.
  CSRGraph g = MakeRmat(13);
  auto store = testutil::MakeStore(g, Env::Default(), "diff_degrees", 256);
  auto degrees = store->ComputeDegrees();
  ASSERT_TRUE(degrees.ok()) << degrees.status().ToString();
  ASSERT_EQ(degrees->size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ((*degrees)[v], g.degree(v)) << "vertex " << v;
  }
  // p99 threshold: at most ~1% of vertices may strictly exceed it.
  HubSplitSpec spec;
  spec.mode = HubSplitSpec::Mode::kPercentile;
  spec.percentile = 99.0;
  const uint32_t threshold =
      ResolveHubDegreeThreshold(spec, *degrees, g.num_vertices());
  ASSERT_NE(threshold, kNoHubThreshold);
  size_t above = 0;
  for (uint32_t d : *degrees) above += d > threshold ? 1 : 0;
  EXPECT_LE(above, g.num_vertices() / 100 + 1);
}

TEST_F(DifferentialTest, RandomizedFaultOffsetsNeverYieldWrongCounts) {
  // End-to-end fault injection: arm a read failure at a random offset
  // for each trial while also varying threads, morphing, and kernel.
  // Every run must either complete with the exact count (the fault
  // landed past the last read) or fail with the typed Unavailable.
  CSRGraph g = MakeRmat(5);
  FaultInjectionEnv fenv(Env::Default());
  auto store = testutil::MakeStore(g, &fenv, "diff_fault", 256);
  const uint64_t oracle = testutil::OracleCount(g);
  EdgeIteratorModel model;
  const auto splits = MakeSplits(*store);

  Random64 rng(0xFA17);
  int completed = 0;
  int faulted = 0;
  for (int trial = 0; trial < 28; ++trial) {
    const uint32_t threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
    const bool morph = rng.Uniform(2) == 0;
    const IntersectKernel kernel = rng.Uniform(2) == 0
                                       ? IntersectKernel::kScalar
                                       : IntersectKernel::kAuto;
    const Split& split = splits[rng.Uniform(splits.size())];
    // Offsets span "fails immediately" through "fails after the run".
    const int64_t offset = static_cast<int64_t>(rng.Uniform(3000));
    SCOPED_TRACE(ConfigLabel(split, threads, morph, true, kernel) +
                 " fail_after=" + std::to_string(offset));
    fenv.FailReadsAfter(static_cast<int64_t>(fenv.read_count()) + offset);
    OptRunner runner(store.get(), &model,
                     MakeOptions(split, threads, morph, true, kernel));
    CountingSink sink;
    Status s = runner.Run(&sink, nullptr);
    if (s.ok()) {
      ASSERT_EQ(sink.count(), oracle);
      ++completed;
    } else {
      ASSERT_TRUE(s.IsUnavailable()) << s.ToString();
      ++faulted;
    }
  }
  // The offset range is tuned so the sweep exercises both outcomes.
  EXPECT_GT(completed, 0);
  EXPECT_GT(faulted, 0);
}

TEST_F(DifferentialTest, SeededFaultPlansNeverYieldWrongCounts) {
  // FaultPlan-driven differential fuzzing: every trial runs under a
  // distinct deterministic plan mixing transient errors, torn reads,
  // and latency spikes. Transient plans must heal through the I/O
  // retry path and still produce the exact count; persistent plans must
  // surface a typed error — Unavailable for device faults, Corruption
  // for torn pages the reread budget cannot heal — never a wrong
  // count. Any failure prints the one-line
  // fault-plan spec — rerun it against the server with
  //   opt_server --fault-plan "<spec>" --graph g=/path
  // or feed it to FaultPlan::Parse in a unit test to reproduce.
  CSRGraph g = MakeRmat(6);
  const uint64_t oracle = testutil::OracleCount(g);
  EdgeIteratorModel model;

  Random64 rng(0x9E1A);
  int healed = 0;
  int degraded = 0;
  for (int trial = 0; trial < 12; ++trial) {
    FaultPlan plan;
    plan.seed = 0xBEEF0000 + static_cast<uint64_t>(trial);
    plan.read_error_p = 0.05 + 0.05 * static_cast<double>(rng.Uniform(4));
    plan.transient = rng.Uniform(4) == 0 ? 0 : 1 + rng.Uniform(2);
    plan.torn_read_p = rng.Uniform(2) == 0 ? 0.02 : 0.0;
    plan.latency_p = rng.Uniform(2) == 0 ? 0.05 : 0.0;
    plan.latency_us = 200;
    plan.path_filter = ".pages";
    SCOPED_TRACE("repro: --fault-plan \"" + plan.ToString() + "\"");

    FaultInjectingEnv fenv(Env::Default(), plan);
    fenv.set_enabled(false);  // build the store fault-free
    auto store = testutil::MakeStore(
        g, &fenv, "diff_plan_" + std::to_string(trial), 256);
    fenv.set_enabled(true);

    OptOptions options = MakeOptions(MakeSplits(*store)[0],
                                     1 + rng.Uniform(3), true, true,
                                     IntersectKernel::kAuto);
    options.io_retry.backoff_base_micros = 20;  // keep trials brisk
    // A location can fault on the error stream AND the torn stream; the
    // budget must cover both transient runs plus the clean attempt.
    options.io_retry.max_attempts = 2 * plan.transient + 1;
    OptRunner runner(store.get(), &model, options);
    CountingSink sink;
    Status s = runner.Run(&sink, nullptr);
    if (s.ok()) {
      ASSERT_EQ(sink.count(), oracle)
          << "wrong count under --fault-plan \"" << plan.ToString() << "\"";
      ++healed;
    } else {
      // Persistent device errors degrade to the typed Unavailable. A
      // persistent torn read is indistinguishable from on-disk damage
      // once the reread budget is spent, so it surfaces as Corruption
      // (retrying a damaged store forever helps nobody).
      const bool can_corrupt = plan.transient == 0 && plan.torn_read_p > 0;
      ASSERT_TRUE(s.IsUnavailable() || (can_corrupt && s.IsCorruption()))
          << s.ToString();
      ++degraded;
    }
    // Transient plans whose faults all healed within the retry budget
    // must end with the exact count — a transient fault is not license
    // for a wrong answer.
    if (plan.transient != 0 && plan.transient <= 2 &&
        options.io_retry.max_attempts > plan.transient) {
      EXPECT_TRUE(s.ok()) << "transient plan should have healed: "
                          << s.ToString();
    }
  }
  EXPECT_GT(healed, 0);
}

}  // namespace
}  // namespace opt
