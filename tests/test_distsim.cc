// Tests for the distributed-method simulators (Table 7 substrate).
#include <gtest/gtest.h>

#include "distsim/distributed.h"
#include "gen/erdos_renyi.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "test_helpers.h"

namespace opt {
namespace {

class DistSimTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DistSimTest, AllSimulatorsMatchOracle) {
  const uint32_t nodes = GetParam();
  CSRGraph g = GenerateErdosRenyi(300, 3000, 77);
  const uint64_t oracle = testutil::OracleCount(g);

  DistSimOptions options;
  options.nodes = nodes;
  options.cores_per_node = 4;

  auto sv = SimulateSV(g, options);
  ASSERT_TRUE(sv.ok()) << sv.status().ToString();
  EXPECT_EQ(sv->triangles, oracle);

  auto akm = SimulateAKM(g, options);
  ASSERT_TRUE(akm.ok());
  EXPECT_EQ(akm->triangles, oracle);

  auto pg = SimulatePowerGraph(g, options);
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(pg->triangles, oracle);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DistSimTest,
                         ::testing::Values(1, 4, 16, 31));

TEST(DistSimTest, SkewedGraphExactness) {
  RmatOptions ropts;
  ropts.scale = 10;
  ropts.edge_factor = 8;
  ropts.seed = 5;
  CSRGraph g = GenerateRmat(ropts);
  const uint64_t oracle = testutil::OracleCount(g);
  DistSimOptions options;
  options.nodes = 8;
  EXPECT_EQ(SimulateSV(g, options)->triangles, oracle);
  EXPECT_EQ(SimulateAKM(g, options)->triangles, oracle);
  EXPECT_EQ(SimulatePowerGraph(g, options)->triangles, oracle);
}

TEST(DistSimTest, SvShuffleDuplicationGrowsWithCluster) {
  // SV ships each edge to ~(b-2) reducers, so its shuffle volume grows
  // with the cluster while the edge set is fixed — the root of Table
  // 7's gap once Hadoop round costs are applied.
  CSRGraph g = GenerateErdosRenyi(500, 6000, 11);
  DistSimOptions small_cluster, large_cluster;
  small_cluster.nodes = 4;   // b = 4, duplication factor 2
  large_cluster.nodes = 31;  // b = 7, duplication factor 5
  auto sv_small = SimulateSV(g, small_cluster);
  auto sv_large = SimulateSV(g, large_cluster);
  ASSERT_TRUE(sv_small.ok());
  ASSERT_TRUE(sv_large.ok());
  EXPECT_GT(sv_large->shuffle_bytes, 2 * sv_small->shuffle_bytes);
  // Duplication never drops below one copy per edge.
  EXPECT_GE(sv_small->shuffle_bytes,
            g.num_edges() * 2 * sizeof(VertexId));
}

TEST(DistSimTest, ShuffleGrowsWithNodes) {
  CSRGraph g = GenerateErdosRenyi(400, 4000, 13);
  DistSimOptions few, many;
  few.nodes = 4;
  many.nodes = 31;
  EXPECT_LT(SimulatePowerGraph(g, few)->shuffle_bytes,
            SimulatePowerGraph(g, many)->shuffle_bytes);
}

TEST(DistSimTest, NetworkModelChargesLatencyAndBandwidth) {
  NetworkModel model;
  model.bandwidth_bytes_per_sec = 1e6;
  model.round_latency_sec = 2.0;
  EXPECT_DOUBLE_EQ(model.TransferSeconds(1'000'000, 3), 1.0 + 6.0);
}

TEST(DistSimTest, RejectsZeroNodes) {
  CSRGraph g = GenerateErdosRenyi(10, 20, 1);
  DistSimOptions options;
  options.nodes = 0;
  EXPECT_FALSE(SimulateSV(g, options).ok());
  EXPECT_FALSE(SimulateAKM(g, options).ok());
  EXPECT_FALSE(SimulatePowerGraph(g, options).ok());
}

TEST(DistSimTest, EmptyGraph) {
  CSRGraph g = GraphBuilder::FromEdges({});
  DistSimOptions options;
  options.nodes = 4;
  EXPECT_EQ(SimulateSV(g, options)->triangles, 0u);
  EXPECT_EQ(SimulateAKM(g, options)->triangles, 0u);
  EXPECT_EQ(SimulatePowerGraph(g, options)->triangles, 0u);
}

}  // namespace
}  // namespace opt
