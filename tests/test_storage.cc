// Unit tests for the storage engine: page codec, page file, buffer pool,
// async I/O engine, graph store, record scanner, fault injection.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/record_scanner.h"
#include "test_helpers.h"
#include "util/stopwatch.h"

namespace opt {
namespace {

TEST(PageCodecTest, RoundtripSegments) {
  std::vector<char> buf(512);
  PageBuilder builder(buf.data(), 512, 7);
  const std::vector<VertexId> n0{1, 2, 3};
  const std::vector<VertexId> n1{0, 2};
  builder.AddSegment(10, 3, 0, n0);
  builder.AddSegment(11, 2, 0, n1);
  builder.Finish();

  PageView view(buf.data(), 512);
  ASSERT_TRUE(view.Validate(7).ok());
  EXPECT_EQ(view.page_id(), 7u);
  EXPECT_EQ(view.num_slots(), 2u);
  EXPECT_FALSE(view.first_segment_is_continuation());

  Segment s0 = view.GetSegment(0);
  EXPECT_EQ(s0.vertex, 10u);
  EXPECT_EQ(s0.total_degree, 3u);
  EXPECT_TRUE(std::equal(s0.neighbors.begin(), s0.neighbors.end(),
                         n0.begin(), n0.end()));
  Segment s1 = view.GetSegment(1);
  EXPECT_EQ(s1.vertex, 11u);
  EXPECT_EQ(s1.neighbors.size(), 2u);
}

TEST(PageCodecTest, ContinuationFlag) {
  std::vector<char> buf(256);
  PageBuilder builder(buf.data(), 256, 3);
  const std::vector<VertexId> tail{5, 6};
  builder.AddSegment(4, 10, 8, tail);  // offset 8 > 0: continuation
  builder.Finish();
  PageView view(buf.data(), 256);
  EXPECT_TRUE(view.first_segment_is_continuation());
  Segment seg = view.GetSegment(0);
  EXPECT_FALSE(seg.IsFirstSegment());
  EXPECT_TRUE(seg.IsLastSegment());
}

TEST(PageCodecTest, CrcDetectsCorruption) {
  std::vector<char> buf(256);
  PageBuilder builder(buf.data(), 256, 0);
  const std::vector<VertexId> n{1};
  builder.AddSegment(0, 1, 0, n);
  builder.Finish();
  ASSERT_TRUE(PageView(buf.data(), 256).Validate(0).ok());
  buf[100] ^= 0x40;
  EXPECT_TRUE(PageView(buf.data(), 256).Validate(0).IsCorruption());
}

TEST(PageCodecTest, ValidateChecksPageId) {
  std::vector<char> buf(256);
  PageBuilder builder(buf.data(), 256, 5);
  builder.Finish();
  EXPECT_TRUE(PageView(buf.data(), 256).Validate(6).IsCorruption());
}

TEST(PageCodecTest, CapacityShrinksAsSegmentsAdded) {
  std::vector<char> buf(256);
  PageBuilder builder(buf.data(), 256, 0);
  const uint32_t before = builder.FreeNeighborCapacity();
  std::vector<VertexId> n(10);
  builder.AddSegment(1, 10, 0, n);
  EXPECT_LT(builder.FreeNeighborCapacity(), before);
}

TEST(PageFileTest, WriteThenRead) {
  Env* env = Env::Default();
  const std::string path = testutil::ProcessTempDir() + "/pagefile_test.pages";
  auto writer = PageFileWriter::Create(env, path, 128);
  ASSERT_TRUE(writer.ok());
  std::vector<char> page(128);
  for (int i = 0; i < 5; ++i) {
    std::memset(page.data(), 'a' + i, page.size());
    ASSERT_TRUE((*writer)->Append(page.data()).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  auto file = PageFile::Open(env, path, 128);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->num_pages(), 5u);
  std::vector<char> out(128);
  ASSERT_TRUE((*file)->ReadPage(3, out.data()).ok());
  EXPECT_EQ(out[0], 'd');
  EXPECT_TRUE((*file)->ReadPage(5, out.data()).code() ==
              StatusCode::kOutOfRange);
  (void)env->DeleteFile(path);
}

TEST(PageFileTest, RejectsMisalignedFile) {
  Env* env = Env::Default();
  const std::string path = testutil::ProcessTempDir() + "/misaligned.pages";
  auto file = env->OpenWritable(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(Slice("short")).ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE(PageFile::Open(env, path, 128).status().IsCorruption());
  (void)env->DeleteFile(path);
}

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(128, 4);
  EXPECT_EQ(pool.LookupAndPin(7), nullptr);
  auto frame = pool.AllocateForRead(7);
  ASSERT_TRUE(frame.ok());
  // Not yet valid: lookups must miss.
  EXPECT_EQ(pool.LookupAndPin(7), nullptr);
  pool.MarkValid(*frame);
  Frame* again = pool.LookupAndPin(7);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again, *frame);
  EXPECT_EQ(pool.stats().hits.load(), 1u);
}

TEST(BufferPoolTest, EvictsColdestUnpinned) {
  BufferPool pool(128, 2);
  auto f0 = pool.AllocateForRead(0);
  auto f1 = pool.AllocateForRead(1);
  pool.MarkValid(*f0);
  pool.MarkValid(*f1);
  pool.Unpin(*f0);
  pool.Unpin(*f1);
  // Touch page 0 so page 1 is coldest.
  pool.Unpin(pool.LookupAndPin(0));
  auto f2 = pool.AllocateForRead(2);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(pool.LookupAndPin(1), nullptr);   // evicted
  EXPECT_NE(pool.LookupAndPin(0), nullptr);   // survived
}

TEST(BufferPoolTest, FailsWhenAllPinned) {
  BufferPool pool(128, 2);
  auto f0 = pool.AllocateForRead(0);
  auto f1 = pool.AllocateForRead(1);
  ASSERT_TRUE(f0.ok());
  ASSERT_TRUE(f1.ok());
  auto f2 = pool.AllocateForRead(2);
  EXPECT_EQ(f2.status().code(), StatusCode::kResourceExhausted);
}

TEST(BufferPoolTest, ClearDropsUnpinnedOnly) {
  BufferPool pool(128, 4);
  auto pinned = pool.AllocateForRead(1);
  auto unpinned = pool.AllocateForRead(2);
  pool.MarkValid(*pinned);
  pool.MarkValid(*unpinned);
  pool.Unpin(*unpinned);
  pool.Clear();
  EXPECT_EQ(pool.LookupAndPin(2), nullptr);
  EXPECT_NE(pool.LookupAndPin(1), nullptr);
}

class AsyncIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    path_ = testutil::ProcessTempDir() + "/async_io_test.pages";
    auto writer = PageFileWriter::Create(env_, path_, 128);
    ASSERT_TRUE(writer.ok());
    std::vector<char> page(128);
    for (int i = 0; i < 16; ++i) {
      std::memset(page.data(), i, page.size());
      ASSERT_TRUE((*writer)->Append(page.data()).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
    auto file = PageFile::Open(env_, path_, 128);
    ASSERT_TRUE(file.ok());
    file_ = std::move(file.value());
  }
  void TearDown() override { (void)env_->DeleteFile(path_); }

  Env* env_;
  std::string path_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(AsyncIoTest, CompletionCallbackRunsOnDrainer) {
  AsyncIoEngine engine(2);
  BufferPool pool(128, 16);
  CompletionQueue queue;
  CompletionGroup group;
  std::atomic<int> verified{0};
  for (uint32_t pid = 0; pid < 16; ++pid) {
    auto frame = pool.AllocateForRead(pid);
    ASSERT_TRUE(frame.ok());
    group.Add();
    ReadRequest req;
    req.file = file_.get();
    req.first_pid = pid;
    req.page_count = 1;
    req.frames = {*frame};
    req.completion_queue = &queue;
    Frame* f = *frame;
    req.callback = [&, pid, f](const Status& s) {
      // EXPECT (not ASSERT): an early return here would skip Done() and
      // hang the drain loop below instead of failing the test.
      EXPECT_TRUE(s.ok()) << s.ToString();
      if (s.ok()) {
        EXPECT_EQ(static_cast<unsigned char>(f->data[0]), pid);
        verified.fetch_add(1);
      }
      group.Done();
    };
    engine.Submit(std::move(req));
  }
  while (!group.Finished()) {
    if (auto task = queue.PopFor(1000)) (*task)();
  }
  EXPECT_EQ(verified.load(), 16);
  EXPECT_EQ(engine.stats().pages_read.load(), 16u);
}

TEST_F(AsyncIoTest, CallbackCanChainSubmissions) {
  // Mirrors Algorithm 9: each completion submits the next request.
  AsyncIoEngine engine(1);
  BufferPool pool(128, 4);
  CompletionQueue queue;
  CompletionGroup group;
  std::atomic<uint32_t> next{1};
  std::atomic<int> completed{0};

  std::function<void(uint32_t)> submit = [&](uint32_t pid) {
    auto frame = pool.AllocateForRead(pid);
    ASSERT_TRUE(frame.ok());
    ReadRequest req;
    req.file = file_.get();
    req.first_pid = pid;
    req.page_count = 1;
    req.frames = {*frame};
    req.completion_queue = &queue;
    Frame* f = *frame;
    req.callback = [&, f](const Status& s) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      pool.Unpin(f);
      completed.fetch_add(1);
      const uint32_t n = next.fetch_add(1);
      if (n < 8) {
        group.Add();
        submit(n);
      }
      group.Done();
    };
    engine.Submit(std::move(req));
  };
  group.Add();
  submit(0);
  while (!group.Finished()) {
    if (auto task = queue.PopFor(1000)) (*task)();
  }
  EXPECT_EQ(completed.load(), 8);
}

TEST_F(AsyncIoTest, ReportsReadErrors) {
  FaultInjectionEnv fenv(env_);
  auto file = PageFile::Open(&fenv, path_, 128);
  ASSERT_TRUE(file.ok());
  fenv.FailReadsAfter(0);  // every read fails
  AsyncIoEngine engine(1);
  BufferPool pool(128, 2);
  CompletionQueue queue;
  CompletionGroup group;
  Status seen;
  auto frame = pool.AllocateForRead(0);
  group.Add();
  ReadRequest req;
  req.file = file->get();
  req.first_pid = 0;
  req.page_count = 1;
  req.frames = {*frame};
  req.completion_queue = &queue;
  req.callback = [&](const Status& s) {
    seen = s;
    group.Done();
  };
  engine.Submit(std::move(req));
  while (!group.Finished()) {
    if (auto task = queue.PopFor(1000)) (*task)();
  }
  EXPECT_TRUE(seen.IsIOError());
  EXPECT_EQ(engine.stats().read_errors.load(), 1u);
}

TEST(GraphStoreWriterTest, GapsBecomeEmptyRecords) {
  const std::string base = testutil::ProcessTempDir() + "/writer_gaps";
  GraphStoreOptions options;
  options.page_size = 256;
  auto writer = GraphStoreWriter::Create(Env::Default(), base, options);
  ASSERT_TRUE(writer.ok());
  const VertexId n2[] = {0, 7};
  ASSERT_TRUE((*writer)->AddRecord(2, std::span<const VertexId>(n2)).ok());
  const VertexId n7[] = {2};
  ASSERT_TRUE((*writer)->AddRecord(7, std::span<const VertexId>(n7)).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  auto store = GraphStore::Open(Env::Default(), base);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_vertices(), 8u);
  std::vector<size_t> degrees(8, 99);
  ASSERT_TRUE(ScanRecords(**store, 0, (*store)->num_pages() - 1,
                          [&](VertexId v, std::span<const VertexId> nb) {
                            degrees[v] = nb.size();
                          })
                  .ok());
  EXPECT_EQ(degrees, (std::vector<size_t>{0, 0, 2, 0, 0, 0, 0, 1}));
}

TEST(GraphStoreWriterTest, RejectsOutOfOrderRecords) {
  const std::string base = testutil::ProcessTempDir() + "/writer_order";
  auto writer = GraphStoreWriter::Create(Env::Default(), base, {});
  ASSERT_TRUE(writer.ok());
  const VertexId nbrs[] = {1};
  ASSERT_TRUE(
      (*writer)->AddRecord(5, std::span<const VertexId>(nbrs)).ok());
  EXPECT_TRUE((*writer)
                  ->AddRecord(3, std::span<const VertexId>(nbrs))
                  .IsInvalidArgument());
  ASSERT_TRUE((*writer)->Finish().ok());
}

TEST(GraphStoreWriterTest, FinishIsIdempotentAndSealsWriter) {
  const std::string base = testutil::ProcessTempDir() + "/writer_finish";
  auto writer = GraphStoreWriter::Create(Env::Default(), base, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  EXPECT_TRUE((*writer)->Finish().ok());  // idempotent
  const VertexId nbrs[] = {1};
  EXPECT_TRUE((*writer)
                  ->AddRecord(0, std::span<const VertexId>(nbrs))
                  .IsInvalidArgument());
}

TEST(GraphStoreWriterTest, RejectsTinyPageSize) {
  GraphStoreOptions options;
  options.page_size = 8;
  EXPECT_FALSE(GraphStoreWriter::Create(Env::Default(),
                                        testutil::ProcessTempDir() + "/writer_tiny",
                                        options)
                   .ok());
}

TEST(GraphStoreTest, RoundtripSmallGraph) {
  CSRGraph g = GraphBuilder::FromEdges(
      {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}});
  auto store = testutil::MakeStore(g, Env::Default(), "roundtrip");
  EXPECT_EQ(store->num_vertices(), 5u);
  EXPECT_EQ(store->num_directed_edges(), 10u);

  // Scan back and compare adjacency lists.
  std::vector<std::vector<VertexId>> lists(5);
  ASSERT_TRUE(ScanRecords(*store, 0, store->num_pages() - 1,
                          [&](VertexId v, std::span<const VertexId> n) {
                            lists[v].assign(n.begin(), n.end());
                          })
                  .ok());
  for (VertexId v = 0; v < 5; ++v) {
    auto expected = g.Neighbors(v);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                           lists[v].begin(), lists[v].end()))
        << "vertex " << v;
  }
}

TEST(GraphStoreTest, SpanningRecords) {
  // One hub with 200 neighbors on 256-byte pages: must span pages.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 200; ++leaf) b.AddEdge(0, leaf);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "spanning");
  EXPECT_GT(store->MaxRecordPages(), 1u);
  EXPECT_GT(store->LastPageOfVertex(0), store->FirstPageOfVertex(0));

  std::vector<VertexId> hub_list;
  ASSERT_TRUE(ScanRecords(*store, 0, store->num_pages() - 1,
                          [&](VertexId v, std::span<const VertexId> n) {
                            if (v == 0) hub_list.assign(n.begin(), n.end());
                          })
                  .ok());
  ASSERT_EQ(hub_list.size(), 200u);
  for (VertexId i = 0; i < 200; ++i) EXPECT_EQ(hub_list[i], i + 1);
}

TEST(GraphStoreTest, PlanIterationCoversAllVertices) {
  CSRGraph g = GenerateErdosRenyi(300, 2000, 17);
  auto store = testutil::MakeStore(g, Env::Default(), "plan");
  const uint32_t m_in = std::max(2u, store->num_pages() / 5);
  VertexId v_start = 0;
  VertexId covered = 0;
  while (v_start < store->num_vertices()) {
    auto plan = store->PlanIteration(v_start, m_in);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->v_lo, v_start);
    EXPECT_GE(plan->v_hi, plan->v_lo);
    EXPECT_LE(plan->num_pages(), m_in);
    covered += plan->v_hi - plan->v_lo + 1;
    v_start = plan->v_hi + 1;
  }
  EXPECT_EQ(covered, store->num_vertices());
}

TEST(GraphStoreTest, PlanFailsWhenRecordTooLarge) {
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 500; ++leaf) b.AddEdge(0, leaf);
  CSRGraph g = std::move(b).Build();
  auto store = testutil::MakeStore(g, Env::Default(), "too_large");
  ASSERT_GT(store->MaxRecordPages(), 1u);
  auto plan = store->PlanIteration(0, 1);
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST(GraphStoreTest, OpenRejectsMissingMeta) {
  auto result = GraphStore::Open(Env::Default(),
                                 testutil::ProcessTempDir() + "/nonexistent_store");
  EXPECT_FALSE(result.ok());
}

TEST(GraphStoreTest, VertexPageDirectoryConsistent) {
  CSRGraph g = GenerateErdosRenyi(200, 1500, 23);
  auto store = testutil::MakeStore(g, Env::Default(), "directory");
  for (VertexId v = 0; v + 1 < store->num_vertices(); ++v) {
    EXPECT_LE(store->FirstPageOfVertex(v), store->LastPageOfVertex(v));
    EXPECT_LE(store->LastPageOfVertex(v), store->FirstPageOfVertex(v + 1) +
                                              0u);
    EXPECT_GE(store->FirstPageOfVertex(v + 1), store->LastPageOfVertex(v));
  }
}

TEST(RecordScannerTest, PartialRangeSkipsBoundaryRecords) {
  CSRGraph g = GenerateErdosRenyi(100, 800, 31);
  auto store = testutil::MakeStore(g, Env::Default(), "partial_scan");
  ASSERT_GT(store->num_pages(), 2u);
  const uint32_t mid = store->num_pages() / 2;
  std::set<VertexId> seen;
  ASSERT_TRUE(ScanRecords(*store, mid, store->num_pages() - 1,
                          [&](VertexId v, std::span<const VertexId>) {
                            EXPECT_TRUE(seen.insert(v).second);
                          })
                  .ok());
  // Every seen vertex must start at or after page `mid`.
  for (VertexId v : seen) EXPECT_GE(store->FirstPageOfVertex(v), mid);
}

TEST(ThrottledEnvTest, CountsAndDelays) {
  ThrottledEnv env(Env::Default(), 100);
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {1, 2}});
  auto store = testutil::MakeStore(g, &env, "throttled");
  std::vector<char> page(store->page_size());
  Stopwatch watch;
  ASSERT_TRUE(store->file()->ReadPage(0, page.data()).ok());
  EXPECT_GE(watch.ElapsedMicros(), 90);
  EXPECT_GE(env.stats().reads.load(), 1u);
  EXPECT_GT(env.stats().write_bytes.load(), 0u);  // store creation
}

TEST(FaultInjectionEnvTest, FailsAfterThreshold) {
  FaultInjectionEnv env(Env::Default());
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {1, 2}});
  auto store = testutil::MakeStore(g, &env, "faulty");
  env.FailReadsAfter(static_cast<int64_t>(env.read_count()) + 1);
  std::vector<char> page(store->page_size());
  EXPECT_TRUE(store->file()->ReadPage(0, page.data()).ok());
  EXPECT_TRUE(store->file()->ReadPage(0, page.data()).IsIOError());
}

}  // namespace
}  // namespace opt
