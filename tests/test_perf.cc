// Tests for the perf_event_open counter subsystem (obs/perf_counters):
// the fallback ladder under the OPT_PERF_BACKEND env knob, honest
// multiplex-ratio reporting, the scope/accumulator plumbing, and the
// runner integration that attributes counters to phases A/B/C.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/erdos_renyi.h"
#include "obs/perf_counters.h"
#include "test_helpers.h"

namespace opt {
namespace {

// Restores the env knob and re-resolves the process backend on scope
// exit, so a failing test cannot leak a forced backend into later ones.
class ScopedPerfBackend {
 public:
  explicit ScopedPerfBackend(const char* value) {
    ::setenv("OPT_PERF_BACKEND", value, 1);
    ReinitPerfCountersForTest();
  }
  ~ScopedPerfBackend() {
    ::unsetenv("OPT_PERF_BACKEND");
    ReinitPerfCountersForTest();
  }
};

// Burns enough CPU that any cpu-time-based backend must observe it.
uint64_t SpinForMillis(int ms) {
  volatile uint64_t sink = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  return sink;
}

TEST(PerfBackend, AutoResolvesToAtLeastRusage) {
  // rusage has no failure mode on Linux, so auto never lands on kNone.
  ScopedPerfBackend env("auto");
  EXPECT_GE(ActivePerfBackend(), PerfBackend::kRusage);
  EXPECT_NE(SupportedPerfEvents() & kPerfHasTaskClock, 0u);
}

TEST(PerfBackend, ForcedRusageCountsCpuTime) {
  ScopedPerfBackend env("rusage");
  ASSERT_EQ(ActivePerfBackend(), PerfBackend::kRusage);
  const PerfReading before = ReadThreadPerfCounters();
  SpinForMillis(30);
  const PerfReading after = ReadThreadPerfCounters();
  const PerfReading delta = PerfReading::Delta(after, before);
  EXPECT_GT(delta.task_clock_ns, 0u);
  // rusage has no PMU scheduling times → never reported as multiplexed.
  EXPECT_DOUBLE_EQ(delta.MultiplexRatio(), 1.0);
  // No hardware events on this rung.
  EXPECT_EQ(delta.cycles, 0u);
  EXPECT_EQ(SupportedPerfEvents() & kPerfHasCycles, 0u);
}

TEST(PerfBackend, ForcedNoneReadsAllZeros) {
  ScopedPerfBackend env("none");
  ASSERT_EQ(ActivePerfBackend(), PerfBackend::kNone);
  SpinForMillis(5);
  const PerfReading r = ReadThreadPerfCounters();
  EXPECT_EQ(r.task_clock_ns, 0u);
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.time_enabled_ns, 0u);
  EXPECT_EQ(SupportedPerfEvents(), 0u);
}

TEST(PerfBackend, UnknownKnobValueFallsBackToAuto) {
  ScopedPerfBackend env("bogus-backend");
  EXPECT_GE(ActivePerfBackend(), PerfBackend::kRusage);
}

TEST(PerfBackend, StatsTextNamesTheActiveRung) {
  ScopedPerfBackend env("rusage");
  const std::string text = PerfBackendStatsText();
  EXPECT_NE(text.find("perf.backend=rusage"), std::string::npos) << text;
}

TEST(PerfReadingTest, MultiplexRatioReportsUndercounting) {
  PerfReading r;
  r.time_enabled_ns = 1000;
  r.time_running_ns = 250;
  EXPECT_DOUBLE_EQ(r.MultiplexRatio(), 0.25);
  EXPECT_LT(r.MultiplexRatio(), 1.0);
  // Never-enabled (rusage, none) reads as "not multiplexed".
  PerfReading zero;
  EXPECT_DOUBLE_EQ(zero.MultiplexRatio(), 1.0);
  // Clock skew between the two kernel timestamps clamps at 1.0.
  r.time_running_ns = 2000;
  EXPECT_DOUBLE_EQ(r.MultiplexRatio(), 1.0);
}

TEST(PerfReadingTest, DerivedRatiosGuardDivisionByZero) {
  PerfReading r;
  EXPECT_DOUBLE_EQ(r.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(r.LlcMissRate(), 0.0);
  r.cycles = 1000;
  r.instructions = 2500;
  r.llc_loads = 100;
  r.llc_misses = 25;
  EXPECT_DOUBLE_EQ(r.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(r.LlcMissRate(), 0.25);
}

TEST(PerfReadingTest, DeltaSaturatesOnBackwardCounters) {
  PerfReading before, after;
  before.cycles = 500;
  after.cycles = 200;  // backend reinit between the snapshots
  before.task_clock_ns = 10;
  after.task_clock_ns = 30;
  const PerfReading d = PerfReading::Delta(after, before);
  EXPECT_EQ(d.cycles, 0u);
  EXPECT_EQ(d.task_clock_ns, 20u);
}

TEST(PerfAccumulatorTest, FoldsDeltasAcrossThreads) {
  PerfAccumulator acc;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acc] {
      PerfReading d;
      d.cycles = 10;
      d.task_clock_ns = 7;
      acc.Add(d);
    });
  }
  for (auto& t : threads) t.join();
  const PerfReading total = acc.Snapshot();
  EXPECT_EQ(total.cycles, 10u * kThreads);
  EXPECT_EQ(total.task_clock_ns, 7u * kThreads);
  acc.Reset();
  EXPECT_EQ(acc.Snapshot().cycles, 0u);
}

TEST(PerfScopeTest, AddsDeltaToAccumulatorOnce) {
  ScopedPerfBackend env("rusage");
  PerfAccumulator acc;
  {
    PerfScope scope(&acc);
    SpinForMillis(20);
    const PerfReading delta = scope.Stop();
    EXPECT_GT(delta.task_clock_ns, 0u);
    // Second stop (and the destructor) must not double-count.
    const PerfReading again = scope.Stop();
    EXPECT_EQ(again.task_clock_ns, 0u);
  }
  const PerfReading total = acc.Snapshot();
  EXPECT_GT(total.task_clock_ns, 0u);
}

TEST(PerfScopeTest, NullAccumulatorIsInert) {
  PerfScope scope(nullptr);
  EXPECT_EQ(scope.Stop().task_clock_ns, 0u);
}

TEST(RunnerPerf, AttributesPhaseCostUnderForcedRusage) {
  ScopedPerfBackend env("rusage");
  CSRGraph g = GenerateErdosRenyi(400, 4000, 99);
  auto store = testutil::MakeStore(g, Env::Default(), "perf_runner");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 8);
  options.m_ex = options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  OptRunStats stats;
  Status s = runner.Run(&sink, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.perf_backend, PerfBackend::kRusage);
  // Phase C (overlapped triangulation) does the triangle work; the
  // cpu-time rung must see it. PerfTotal folds all three phases.
  EXPECT_GT(stats.perf_phase_c.task_clock_ns, 0u);
  EXPECT_GE(stats.PerfTotal().task_clock_ns,
            stats.perf_phase_c.task_clock_ns);
}

TEST(RunnerPerf, CollectPerfOffLeavesReadingsZero) {
  ScopedPerfBackend env("rusage");
  CSRGraph g = GenerateErdosRenyi(200, 1500, 7);
  auto store = testutil::MakeStore(g, Env::Default(), "perf_runner_off");
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 4);
  options.m_ex = options.m_in;
  options.collect_perf = false;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  OptRunStats stats;
  ASSERT_TRUE(runner.Run(&sink, &stats).ok());
  EXPECT_EQ(stats.PerfTotal().task_clock_ns, 0u);
}

}  // namespace
}  // namespace opt
