// Cross-method property tests: every exact method in the repository must
// produce the identical triangle set on randomized graphs across
// generators, seeds, page sizes, and buffer budgets. This is the
// repo-wide invariant behind the paper's Theorem 1 / Lemma 1.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/ayz.h"
#include "baselines/cc.h"
#include "baselines/graphchi_tri.h"
#include "baselines/inmemory.h"
#include "baselines/mgt.h"
#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "distsim/distributed.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/reorder.h"
#include "test_helpers.h"

namespace opt {
namespace {

enum class Gen { kErdosRenyi, kRmat, kHolmeKim };

CSRGraph MakeGraph(Gen gen, uint64_t seed) {
  switch (gen) {
    case Gen::kErdosRenyi:
      return GenerateErdosRenyi(300, 2400, seed);
    case Gen::kRmat: {
      RmatOptions options;
      options.scale = 9;
      options.edge_factor = 6;
      options.seed = seed;
      return GenerateRmat(options);
    }
    case Gen::kHolmeKim: {
      HolmeKimOptions options;
      options.num_vertices = 400;
      options.edges_per_vertex = 4;
      options.triad_probability = 0.4;
      options.seed = seed;
      return GenerateHolmeKim(options);
    }
  }
  return GraphBuilder::FromEdges({});
}

const char* GenName(Gen gen) {
  switch (gen) {
    case Gen::kErdosRenyi:
      return "er";
    case Gen::kRmat:
      return "rmat";
    case Gen::kHolmeKim:
      return "hk";
  }
  return "?";
}

using PropertyParam = std::tuple<Gen, uint64_t /*seed*/,
                                 uint32_t /*page size*/>;

class CrossMethodTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(CrossMethodTest, AllExactMethodsEmitTheSameTriangles) {
  const auto [gen, seed, page_size] = GetParam();
  CSRGraph g = MakeGraph(gen, seed);
  const auto oracle = testutil::OracleTriangles(g);
  const uint64_t count = oracle.size();

  // In-memory vertex iterator.
  {
    VectorSink sink;
    VertexIteratorInMemory(g, &sink);
    ASSERT_EQ(sink.Sorted(), oracle) << "in-memory VI";
  }
  // AYZ (count only).
  EXPECT_EQ(AyzTriangleCount(g), count) << "AYZ";

  auto store =
      testutil::MakeStore(g, Env::Default(), "prop", page_size);
  const uint32_t buffer =
      std::max(store->MaxRecordPages() * 2, store->num_pages() / 6);

  // OPT, edge- and vertex-iterator instances, overlapped with morphing.
  for (bool vertex_iter : {false, true}) {
    OptOptions options;
    options.m_in = buffer;
    options.m_ex = buffer;
    options.num_threads = 3;
    EdgeIteratorModel ei;
    VertexIteratorModel vi;
    OptRunner runner(store.get(),
                     vertex_iter
                         ? static_cast<const IteratorModel*>(&vi)
                         : static_cast<const IteratorModel*>(&ei),
                     options);
    VectorSink sink;
    Status s = runner.Run(&sink, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(sink.Sorted(), oracle)
        << "OPT " << (vertex_iter ? "VI" : "EI");
  }
  // MGT.
  {
    MgtOptions options;
    options.memory_pages = buffer;
    VectorSink sink;
    ASSERT_TRUE(RunMgt(store.get(), &sink, options, nullptr).ok());
    ASSERT_EQ(sink.Sorted(), oracle) << "MGT";
  }
  // CC-Seq.
  {
    CcOptions options;
    options.memory_pages = buffer;
    options.temp_dir = testutil::ProcessTempDir();
    VectorSink sink;
    ASSERT_TRUE(
        RunChuCheng(store.get(), Env::Default(), &sink, options, nullptr)
            .ok());
    ASSERT_EQ(sink.Sorted(), oracle) << "CC-Seq";
  }
  // GraphChi-Tri.
  {
    GraphChiTriOptions options;
    options.memory_pages = buffer;
    options.temp_dir = testutil::ProcessTempDir();
    options.num_threads = 2;
    VectorSink sink;
    ASSERT_TRUE(RunGraphChiTri(store.get(), Env::Default(), &sink, options,
                               nullptr)
                    .ok());
    ASSERT_EQ(sink.Sorted(), oracle) << "GraphChi-Tri";
  }
  // Distributed simulators (counts).
  DistSimOptions dist;
  dist.nodes = 5;
  EXPECT_EQ(SimulateSV(g, dist)->triangles, count);
  EXPECT_EQ(SimulateAKM(g, dist)->triangles, count);
  EXPECT_EQ(SimulatePowerGraph(g, dist)->triangles, count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossMethodTest,
    ::testing::Combine(::testing::Values(Gen::kErdosRenyi, Gen::kRmat,
                                         Gen::kHolmeKim),
                       ::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Values(128u, 512u)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return std::string(GenName(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param));
    });

TEST(OrderInvarianceTest, TriangleCountInvariantUnderRelabeling) {
  // Triangle count is a graph invariant: the degree-order heuristic and
  // random permutations must not change it (§2.2).
  CSRGraph g = MakeGraph(Gen::kRmat, 9);
  const uint64_t count = testutil::OracleCount(g);
  EXPECT_EQ(testutil::OracleCount(DegreeOrder(g).graph), count);
  EXPECT_EQ(testutil::OracleCount(RandomOrder(g, 123).graph), count);
}

class BufferSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BufferSweepTest, OptCorrectAtEveryBufferRatio) {
  // The paper sweeps 5%..25% buffer sizes (Figures 3a and 5): the result
  // must be identical everywhere.
  CSRGraph g = MakeGraph(Gen::kRmat, 4);
  auto store = testutil::MakeStore(g, Env::Default(), "buf_sweep", 256);
  const double percent = GetParam();
  const auto budget = static_cast<uint32_t>(
      std::max(2.0, store->num_pages() * percent / 100.0));
  OptOptions options;
  options.m_in = std::max(budget / 2 + 1, store->MaxRecordPages());
  options.m_ex = budget / 2 + 1;
  options.num_threads = 2;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Ratios, BufferSweepTest,
                         ::testing::Values(5.0, 10.0, 15.0, 20.0, 25.0,
                                           60.0, 100.0));

class ThreadSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ThreadSweepTest, OptCorrectAtEveryThreadCount) {
  CSRGraph g = MakeGraph(Gen::kHolmeKim, 6);
  auto store = testutil::MakeStore(g, Env::Default(), "thread_sweep", 256);
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 5);
  options.m_ex = options.m_in;
  options.num_threads = GetParam();
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweepTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

class FaultSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FaultSweepTest, FailureAtAnyPointIsCleanErrorOrCorrectResult) {
  // Inject an I/O failure after N successful reads, at several N: the
  // runner must either finish with the exact count (failure landed
  // after the last read) or surface the typed Unavailable — never hang,
  // crash, or return a wrong count.
  CSRGraph g = MakeGraph(Gen::kRmat, 12);
  FaultInjectionEnv fenv(Env::Default());
  auto store = testutil::MakeStore(g, &fenv, "fault_sweep", 256);
  const uint64_t oracle = testutil::OracleCount(g);

  const int64_t fail_after = GetParam();
  fenv.FailReadsAfter(static_cast<int64_t>(fenv.read_count()) + fail_after);

  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 6);
  options.m_ex = options.m_in;
  options.num_threads = 3;
  EdgeIteratorModel model;
  OptRunner runner(store.get(), &model, options);
  CountingSink sink;
  Status s = runner.Run(&sink, nullptr);
  if (s.ok()) {
    EXPECT_EQ(sink.count(), oracle);
  } else {
    EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(FailPoints, FaultSweepTest,
                         ::testing::Values(0, 1, 3, 7, 17, 41, 97, 231,
                                           517, 1203, 5000, 50000));

TEST(RepeatabilityTest, OptDeterministicAcrossRuns) {
  CSRGraph g = MakeGraph(Gen::kErdosRenyi, 10);
  auto store = testutil::MakeStore(g, Env::Default(), "repeat", 256);
  OptOptions options;
  options.m_in = std::max(store->MaxRecordPages(), store->num_pages() / 4);
  options.m_ex = options.m_in;
  options.num_threads = 4;
  EdgeIteratorModel model;
  std::vector<Triangle> first;
  for (int run = 0; run < 3; ++run) {
    OptRunner runner(store.get(), &model, options);
    VectorSink sink;
    ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
    if (run == 0) {
      first = sink.Sorted();
    } else {
      EXPECT_EQ(sink.Sorted(), first);
    }
  }
}

}  // namespace
}  // namespace opt
