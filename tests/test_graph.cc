// Unit tests for the graph substrate: builder, CSR, reorder, stats,
// intersection kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/builder.h"
#include "graph/csr_graph.h"
#include "graph/intersect.h"
#include "graph/reorder.h"
#include "graph/stats.h"
#include "test_helpers.h"
#include "util/random.h"

namespace opt {
namespace {

CSRGraph PaperGraph() {
  // Figure 1: a-b, a-c, b-c, c-d, c-f, c-g, c-h, d-e, d-f, e-f, f-g, g-h
  // with a=0..h=7. Triangles: abc, cdf, def, cfg, cgh (5 total).
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(2, 5);
  b.AddEdge(2, 6);
  b.AddEdge(2, 7);
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  return std::move(b).Build();
}

TEST(GraphBuilderTest, BuildsSimpleGraph) {
  CSRGraph g = PaperGraph();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.degree(2), 6u);  // c touches a,b,d,f,g,h
}

TEST(GraphBuilderTest, DropsSelfLoopsAndDuplicates) {
  GraphBuilder b;
  b.AddEdge(1, 1);  // self loop
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // duplicate, reversed
  b.AddEdge(0, 1);  // duplicate
  CSRGraph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilderTest, EmptyGraph) {
  CSRGraph g = GraphBuilder::FromEdges({});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, IsolatedVerticesGetEmptyLists) {
  CSRGraph g = GraphBuilder::FromEdges({{0, 5}});
  EXPECT_EQ(g.num_vertices(), 6u);
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(GraphBuilderTest, AdjacencySorted) {
  CSRGraph g = GraphBuilder::FromEdges({{3, 1}, {3, 9}, {3, 4}, {3, 0}});
  auto nbrs = g.Neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(CSRGraphTest, SuccessorsAndPredecessors) {
  CSRGraph g = PaperGraph();
  auto succ = g.Successors(2);
  EXPECT_EQ(std::vector<VertexId>(succ.begin(), succ.end()),
            (std::vector<VertexId>{3, 5, 6, 7}));
  auto prec = g.Predecessors(2);
  EXPECT_EQ(std::vector<VertexId>(prec.begin(), prec.end()),
            (std::vector<VertexId>{0, 1}));
}

TEST(CSRGraphTest, HasEdge) {
  CSRGraph g = PaperGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 7));
  EXPECT_FALSE(g.HasEdge(0, 100));  // out of range
}

TEST(CSRGraphTest, SaveLoadRoundtrip) {
  CSRGraph g = PaperGraph();
  const std::string path = testutil::ProcessTempDir() + "/graph_roundtrip.bin";
  ASSERT_TRUE(g.Save(path).ok());
  auto loaded = CSRGraph::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = g.Neighbors(v);
    auto b = loaded->Neighbors(v);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  std::remove(path.c_str());
}

TEST(CSRGraphTest, LoadRejectsGarbage) {
  const std::string path = testutil::ProcessTempDir() + "/garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("this is not a graph file at all, not even close!!", f);
  fclose(f);
  auto loaded = CSRGraph::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CSRGraphTest, ArboricityWorkMatchesDefinition) {
  CSRGraph g = PaperGraph();
  uint64_t expected = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Successors(u)) {
      expected += std::min(g.degree(u), g.degree(v));
    }
  }
  EXPECT_EQ(g.ArboricityWork(), expected);
}

TEST(EdgeListFileTest, ParsesAndSkipsComments) {
  const std::string path = testutil::ProcessTempDir() + "/edges.txt";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("# comment line\n0 1\n1 2\n\n2 0\n", f);
  fclose(f);
  auto g = GraphBuilder::FromEdgeListFile(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3u);
  std::remove(path.c_str());
}

TEST(EdgeListFileTest, RejectsMalformedLine) {
  const std::string path = testutil::ProcessTempDir() + "/bad_edges.txt";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("0 1\nnot numbers\n", f);
  fclose(f);
  auto g = GraphBuilder::FromEdgeListFile(path);
  EXPECT_FALSE(g.ok());
  std::remove(path.c_str());
}

TEST(ReorderTest, DegreeOrderAscends) {
  CSRGraph g = PaperGraph();
  ReorderResult r = DegreeOrder(g);
  // Ids must ascend with degree.
  for (VertexId id = 0; id + 1 < r.graph.num_vertices(); ++id) {
    EXPECT_LE(r.graph.degree(id), r.graph.degree(id + 1));
  }
}

TEST(ReorderTest, PreservesStructure) {
  CSRGraph g = PaperGraph();
  ReorderResult r = DegreeOrder(g);
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
  // Edge set isomorphic under the permutation.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      EXPECT_TRUE(r.graph.HasEdge(r.old_to_new[u], r.old_to_new[v]));
    }
  }
}

TEST(ReorderTest, PermutationIsInverse) {
  CSRGraph g = PaperGraph();
  ReorderResult r = RandomOrder(g, 42);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.old_to_new[r.new_to_old[v]], v);
    EXPECT_EQ(r.new_to_old[r.old_to_new[v]], v);
  }
}

TEST(ReorderTest, DegreeOrderShrinksSuccessorsOfHubs) {
  // On a star graph the hub must get the highest id, giving it an empty
  // successor list — the essence of the Schank–Wagner heuristic.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 10; ++leaf) b.AddEdge(0, leaf);
  CSRGraph star = std::move(b).Build();
  ReorderResult r = DegreeOrder(star);
  const VertexId hub = r.old_to_new[0];
  EXPECT_EQ(hub, star.num_vertices() - 1);
  EXPECT_TRUE(r.graph.Successors(hub).empty());
}

TEST(StatsTest, BasicCounts) {
  CSRGraph g = PaperGraph();
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_vertices, 8u);
  EXPECT_EQ(stats.num_edges, 12u);
  EXPECT_EQ(stats.max_degree, 6u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 3.0);
}

TEST(StatsTest, TransitivityOfTriangle) {
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {1, 2}, {0, 2}});
  // 3 wedges, 1 triangle -> transitivity 1.
  EXPECT_DOUBLE_EQ(Transitivity(g, 1), 1.0);
}

TEST(StatsTest, ClusteringCoefficientOfClique) {
  // K4: every vertex has clustering 1.
  GraphBuilder b;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  CSRGraph g = std::move(b).Build();
  std::vector<uint64_t> per_vertex(4, 3);  // each vertex in 3 triangles
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g, per_vertex), 1.0);
}

TEST(StatsTest, PathHasZeroClustering) {
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {1, 2}, {2, 3}});
  std::vector<uint64_t> per_vertex(4, 0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g, per_vertex), 0.0);
}

class IntersectTest : public ::testing::TestWithParam<int> {};

TEST_P(IntersectTest, AllStrategiesAgreeOnRandomInputs) {
  Random64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<VertexId> a, b;
    const size_t na = rng.Uniform(64);
    const size_t nb = rng.Uniform(512);
    for (size_t i = 0; i < na; ++i)
      a.push_back(static_cast<VertexId>(rng.Uniform(300)));
    for (size_t i = 0; i < nb; ++i)
      b.push_back(static_cast<VertexId>(rng.Uniform(300)));
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());

    std::vector<VertexId> merge_out, gallop_out, adaptive_out;
    IntersectMerge(a, b, &merge_out);
    IntersectGalloping(a, b, &gallop_out);
    Intersect(a, b, &adaptive_out);
    EXPECT_EQ(merge_out, gallop_out);
    EXPECT_EQ(merge_out, adaptive_out);
    EXPECT_EQ(IntersectCountMerge(a, b), merge_out.size());
    EXPECT_EQ(IntersectCountGalloping(a, b), merge_out.size());
    EXPECT_EQ(IntersectCount(a, b), merge_out.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectTest, ::testing::Values(1, 2, 3, 4));

TEST(IntersectTest, EmptyInputs) {
  std::vector<VertexId> out;
  EXPECT_EQ(Intersect({}, {}, &out), 0u);
  std::vector<VertexId> a{1, 2, 3};
  EXPECT_EQ(Intersect(a, {}, &out), 0u);
  EXPECT_EQ(Intersect({}, a, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, AppendsToExistingOutput) {
  std::vector<VertexId> a{1, 2, 3}, b{2, 3, 4};
  std::vector<VertexId> out{99};
  EXPECT_EQ(IntersectMerge(a, b, &out), 2u);
  EXPECT_EQ(out, (std::vector<VertexId>{99, 2, 3}));
}

}  // namespace
}  // namespace opt
