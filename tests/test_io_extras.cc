// Tests for the I/O extras: O_DIRECT Env, aligned buffers, buffer-pool
// growth, the listing reader, and the synchronous listing mode.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/iterator_model.h"
#include "core/listing_reader.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "test_helpers.h"
#include "util/aligned_buffer.h"

namespace opt {
namespace {

TEST(AlignedBufferTest, AlignmentAndRounding) {
  AlignedBuffer buffer(100, 4096);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % 4096, 0u);
  EXPECT_EQ(buffer.size(), 4096u);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(4096);
  char* ptr = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(BufferPoolTest, EnsureFramesGrowsAndKeepsPointersStable) {
  BufferPool pool(4096, 4);
  auto f0 = pool.AllocateForRead(0);
  ASSERT_TRUE(f0.ok());
  char* data0 = (*f0)->data;
  pool.EnsureFrames(64);
  EXPECT_EQ(pool.num_frames(), 64u);
  EXPECT_EQ((*f0)->data, data0);  // old frame untouched
  // All 64 frames allocatable.
  for (uint32_t pid = 1; pid < 64; ++pid) {
    ASSERT_TRUE(pool.AllocateForRead(pid).ok()) << pid;
  }
  EXPECT_EQ(pool.AllocateForRead(100).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(BufferPoolTest, FramesArePageAligned) {
  BufferPool pool(4096, 8);
  for (uint32_t pid = 0; pid < 8; ++pid) {
    auto frame = pool.AllocateForRead(pid);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(reinterpret_cast<uintptr_t>((*frame)->data) % 4096, 0u);
  }
}

TEST(DirectIoEnvTest, AlignedReadRoundtrip) {
  CSRGraph g = GraphBuilder::FromEdges({{0, 1}, {1, 2}, {0, 2}});
  const std::string base = testutil::ProcessTempDir() + "/direct_roundtrip";
  GraphStoreOptions options;
  options.page_size = 4096;
  ASSERT_TRUE(GraphStore::Create(g, Env::Default(), base, options).ok());

  DirectIoEnv direct(Env::Default());
  auto file = direct.OpenRandomAccess(GraphStore::PagesPath(base));
  if (!file.ok() && file.status().code() == StatusCode::kNotSupported) {
    GTEST_SKIP() << file.status().ToString();
  }
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  AlignedBuffer buffer(4096);
  ASSERT_TRUE((*file)->Read(0, 4096, buffer.data()).ok());
  ASSERT_TRUE(PageView(buffer.data(), 4096).Validate(0).ok());

  // Misaligned requests are satisfied transparently through the aligned
  // scratch window and must return identical bytes.
  std::vector<char> misaligned(128);
  ASSERT_TRUE((*file)->Read(100, 128, misaligned.data()).ok());
  EXPECT_EQ(std::memcmp(misaligned.data(), buffer.data() + 100, 128), 0);

  // Reads beyond EOF still fail.
  auto size = Env::Default()->FileSize(GraphStore::PagesPath(base));
  ASSERT_TRUE(size.ok());
  EXPECT_TRUE((*file)->Read(*size - 10, 100, misaligned.data()).IsIOError());
}

TEST(DirectIoEnvTest, FullOptRunThroughDirectIo) {
  CSRGraph g = GenerateErdosRenyi(500, 6000, 21);
  const std::string base = testutil::ProcessTempDir() + "/direct_opt";
  GraphStoreOptions gso;
  gso.page_size = 4096;
  ASSERT_TRUE(GraphStore::Create(g, Env::Default(), base, gso).ok());

  DirectIoEnv direct(Env::Default());
  auto store = GraphStore::Open(&direct, base);
  // The metadata sidecar is read through the same env: tiny misaligned
  // reads would fail under O_DIRECT — GraphStore::Open uses the
  // fallback-capable path, so an unsupported FS is the only skip case.
  if (!store.ok() && store.status().code() == StatusCode::kNotSupported) {
    GTEST_SKIP() << store.status().ToString();
  }
  if (!store.ok()) GTEST_SKIP() << store.status().ToString();

  OptOptions options;
  options.m_in =
      std::max((*store)->MaxRecordPages(), (*store)->num_pages() / 4);
  options.m_ex = options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store->get(), &model, options);
  CountingSink sink;
  Status s = runner.Run(&sink, nullptr);
  if (s.IsInvalidArgument()) {
    GTEST_SKIP() << "direct I/O alignment not satisfiable here: "
                 << s.ToString();
  }
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.count(), testutil::OracleCount(g));
}

TEST(ListingReaderTest, RoundtripThroughSinkAndReader) {
  const std::string path = testutil::ProcessTempDir() + "/listing_roundtrip.bin";
  CSRGraph g = GenerateErdosRenyi(200, 2000, 31);
  auto expected = testutil::OracleTriangles(g);
  {
    ListingSink sink(Env::Default(), path, /*flush_threshold=*/128);
    EdgeIteratorInMemory(g, &sink);
    ASSERT_TRUE(sink.Finish().ok());
  }
  auto loaded = ReadListingTriangles(Env::Default(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, expected);
  auto count = CountListingTriangles(Env::Default(), path);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, expected.size());
  std::remove(path.c_str());
}

TEST(ListingReaderTest, SynchronousSinkProducesSameListing) {
  const std::string async_path = testutil::ProcessTempDir() + "/listing_async.bin";
  const std::string sync_path = testutil::ProcessTempDir() + "/listing_sync.bin";
  CSRGraph g = GenerateErdosRenyi(150, 1200, 7);
  {
    ListingSink sink(Env::Default(), async_path, 64, /*asynchronous=*/true);
    EdgeIteratorInMemory(g, &sink);
    ASSERT_TRUE(sink.Finish().ok());
  }
  {
    ListingSink sink(Env::Default(), sync_path, 64, /*asynchronous=*/false);
    EdgeIteratorInMemory(g, &sink);
    ASSERT_TRUE(sink.Finish().ok());
  }
  auto a = ReadListingTriangles(Env::Default(), async_path);
  auto b = ReadListingTriangles(Env::Default(), sync_path);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  std::remove(async_path.c_str());
  std::remove(sync_path.c_str());
}

TEST(ListingReaderTest, RejectsTruncatedFile) {
  const std::string path = testutil::ProcessTempDir() + "/listing_truncated.bin";
  {
    auto file = Env::Default()->OpenWritable(path);
    ASSERT_TRUE(file.ok());
    // A record header promising 5 neighbors but delivering none.
    const uint32_t header[3] = {1, 2, 5};
    ASSERT_TRUE((*file)
                    ->Append(Slice(reinterpret_cast<const char*>(header),
                                   sizeof(header)))
                    .ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto result = ReadListingTriangles(Env::Default(), path);
  EXPECT_TRUE(result.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(ListingReaderTest, EmptyListing) {
  const std::string path = testutil::ProcessTempDir() + "/listing_empty.bin";
  {
    ListingSink sink(Env::Default(), path);
    ASSERT_TRUE(sink.Finish().ok());
  }
  auto count = CountListingTriangles(Env::Default(), path);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opt
