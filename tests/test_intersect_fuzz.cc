// Randomized differential tests for every intersection kernel variant
// (scalar merge/galloping/hash, SSE, AVX2) against a
// std::set_intersection oracle, over adversarial inputs: empty lists,
// singletons, all-equal lists, no-overlap interleavings, duplicates at
// SIMD block boundaries, lengths straddling register tails (7/8/9,
// 15/16/17), and heavily skewed size ratios. Also covers the dispatch
// table itself (parse/set/active, per-kernel counters).
#include "graph/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/random.h"

namespace opt {
namespace {

std::vector<VertexId> Oracle(const std::vector<VertexId>& a,
                             const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

constexpr IntersectKernel kAllKernels[] = {
    IntersectKernel::kScalar, IntersectKernel::kSse, IntersectKernel::kAvx2};

/// Checks every kernel variant (merge, galloping, hash; materializing
/// and counting) against the oracle for one input pair. On hosts
/// without SSE/AVX2 those rows degrade to scalar (still checked).
void CheckAllVariants(const std::vector<VertexId>& a,
                      const std::vector<VertexId>& b,
                      const std::string& label) {
  const std::vector<VertexId> expected = Oracle(a, b);
  for (IntersectKernel kernel : kAllKernels) {
    const std::string tag =
        label + " kernel=" + IntersectKernelName(kernel) + " |a|=" +
        std::to_string(a.size()) + " |b|=" + std::to_string(b.size());
    std::vector<VertexId> merged;
    ASSERT_EQ(IntersectMergeWith(kernel, a, b, &merged), expected.size())
        << tag;
    ASSERT_EQ(merged, expected) << tag;
    ASSERT_EQ(IntersectCountMergeWith(kernel, a, b), expected.size()) << tag;

    std::vector<VertexId> galloped;
    ASSERT_EQ(IntersectGallopingWith(kernel, a, b, &galloped),
              expected.size())
        << tag;
    ASSERT_EQ(galloped, expected) << tag;
    ASSERT_EQ(IntersectCountGallopingWith(kernel, a, b), expected.size())
        << tag;
  }
  std::vector<VertexId> hashed;
  ASSERT_EQ(IntersectHash(a, b, &hashed), expected.size()) << label;
  ASSERT_EQ(hashed, expected) << label;
  ASSERT_EQ(IntersectCountHash(a, b), expected.size()) << label;
}

/// Sorted list with tunable stride and duplicate probability.
std::vector<VertexId> MakeList(Random64* rng, size_t n, uint32_t max_step,
                               uint32_t dup_percent, VertexId start = 0) {
  std::vector<VertexId> out;
  out.reserve(n);
  VertexId v = start;
  for (size_t i = 0; i < n; ++i) {
    if (out.empty() || rng->Uniform(100) >= dup_percent) {
      v += 1 + static_cast<VertexId>(rng->Uniform(max_step));
    }
    out.push_back(v);  // duplicate when v was not advanced
  }
  return out;
}

TEST(IntersectFuzzTest, AdversarialFixedCases) {
  const std::vector<VertexId> empty;
  const std::vector<VertexId> one{7};
  const std::vector<VertexId> run{5, 5, 5, 5, 5, 5, 5, 5, 5};
  const std::vector<VertexId> evens{0, 2, 4, 6, 8, 10, 12, 14, 16, 18};
  const std::vector<VertexId> odds{1, 3, 5, 7, 9, 11, 13, 15, 17, 19};
  const std::vector<VertexId> big{0xFFFFFFF0u, 0xFFFFFFF5u, 0xFFFFFFFEu,
                                  0xFFFFFFFFu};
  CheckAllVariants(empty, empty, "empty-empty");
  CheckAllVariants(empty, evens, "empty-list");
  CheckAllVariants(evens, empty, "list-empty");
  CheckAllVariants(one, one, "singleton-hit");
  CheckAllVariants(one, evens, "singleton-miss");
  CheckAllVariants(run, run, "all-equal");
  CheckAllVariants(run, one, "all-equal-vs-singleton");
  CheckAllVariants(evens, odds, "no-overlap-interleaved");
  CheckAllVariants(evens, evens, "identical");
  // Values above INT32_MAX: catches signed-compare mistakes in the
  // vectorized lower bound (unsigned order needs the sign-flip trick).
  CheckAllVariants(big, big, "unsigned-range");
  CheckAllVariants(big, evens, "unsigned-vs-small");
}

TEST(IntersectFuzzTest, TailLengthsStraddlingSimdRegisters) {
  // Every length pair around the 4-lane and 8-lane block sizes,
  // including 7/8/9 and 15/16/17, at three densities.
  std::vector<size_t> lengths;
  for (size_t n = 0; n <= 18; ++n) lengths.push_back(n);
  for (size_t n : {23u, 24u, 25u, 31u, 32u, 33u}) lengths.push_back(n);
  Random64 rng(2024);
  for (uint32_t max_step : {1u, 3u, 16u}) {
    for (size_t na : lengths) {
      for (size_t nb : lengths) {
        const auto a = MakeList(&rng, na, max_step, /*dup_percent=*/0);
        const auto b = MakeList(&rng, nb, max_step, /*dup_percent=*/0);
        CheckAllVariants(a, b, "tail-sweep");
      }
    }
  }
}

TEST(IntersectFuzzTest, DuplicatesAtBlockBoundaries) {
  // Place runs of equal values so they straddle every 4- and 8-element
  // block boundary of either input — the case where a vectorized
  // block-merge can double-emit if it mishandles duplicate windows.
  Random64 rng(7);
  for (size_t boundary : {4u, 8u, 12u, 16u, 24u, 32u}) {
    for (size_t run_len : {2u, 3u, 5u, 9u}) {
      for (int side = 0; side < 3; ++side) {
        std::vector<VertexId> a, b;
        VertexId v = 1;
        auto fill = [&](std::vector<VertexId>* out, bool with_run) {
          out->clear();
          VertexId x = v;
          const size_t total = boundary + run_len + 8;
          for (size_t i = 0; i < total; ++i) {
            const bool in_run =
                with_run && i >= boundary - 1 && i < boundary - 1 + run_len;
            if (!in_run || out->empty()) {
              x += 1 + static_cast<VertexId>(rng.Uniform(2));
            }
            out->push_back(x);
          }
        };
        fill(&a, side != 1);
        fill(&b, side != 0);
        CheckAllVariants(a, b, "dup-at-boundary");
        v += 100;
      }
    }
  }
}

TEST(IntersectFuzzTest, RandomizedEquivalence) {
  // The bulk of the ≥10k randomized cases: random lengths, strides,
  // duplicate rates, and overlap offsets.
  Random64 rng(0xDEADBEEF);
  for (int trial = 0; trial < 6000; ++trial) {
    const size_t na = rng.Uniform(120);
    const size_t nb = rng.Uniform(120);
    const uint32_t max_step = 1 + static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t dup_percent = static_cast<uint32_t>(rng.Uniform(35));
    const VertexId offset = static_cast<VertexId>(rng.Uniform(64));
    const auto a = MakeList(&rng, na, max_step, dup_percent);
    const auto b = MakeList(&rng, nb, max_step, dup_percent, offset);
    CheckAllVariants(a, b, "random");
  }
}

TEST(IntersectFuzzTest, HeavilySkewedSizeRatios) {
  // |a| << |b|: the galloping regime, exercised in both argument orders.
  Random64 rng(99);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t na = 1 + rng.Uniform(12);
    const size_t nb = 500 + rng.Uniform(1500);
    const auto a =
        MakeList(&rng, na, /*max_step=*/600, static_cast<uint32_t>(
                     rng.Uniform(20)));
    const auto b = MakeList(&rng, nb, /*max_step=*/4,
                            static_cast<uint32_t>(rng.Uniform(20)));
    CheckAllVariants(a, b, "skewed-small-large");
    CheckAllVariants(b, a, "skewed-large-small");
  }
}

// ---------------------------------------------------------------------------
// Dispatch-table behavior.
// ---------------------------------------------------------------------------

class KernelDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Tests mutate process-wide dispatch state; restore auto-selection.
    ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto).ok());
  }
};

TEST_F(KernelDispatchTest, ParseAcceptsKnownNamesOnly) {
  for (IntersectKernel k :
       {IntersectKernel::kScalar, IntersectKernel::kSse,
        IntersectKernel::kAvx2, IntersectKernel::kAuto}) {
    auto parsed = ParseIntersectKernel(IntersectKernelName(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(ParseIntersectKernel("sse9").ok());
  EXPECT_FALSE(ParseIntersectKernel("").ok());
  EXPECT_FALSE(ParseIntersectKernel("AUTO").ok());
}

TEST_F(KernelDispatchTest, AutoResolvesToBestSupported) {
  ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto).ok());
  EXPECT_EQ(ActiveIntersectKernel(), BestIntersectKernel());
  EXPECT_TRUE(IntersectKernelSupported(ActiveIntersectKernel()));
  EXPECT_TRUE(IntersectKernelSupported(IntersectKernel::kScalar));
}

TEST_F(KernelDispatchTest, SetHonorsSupportedKernelsAndRejectsOthers) {
  for (IntersectKernel k : kAllKernels) {
    if (IntersectKernelSupported(k)) {
      ASSERT_TRUE(SetIntersectKernel(k).ok());
      EXPECT_EQ(ActiveIntersectKernel(), k);
    } else {
      const Status s = SetIntersectKernel(k);
      EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
    }
  }
}

TEST_F(KernelDispatchTest, DispatchedEntryPointsMatchOracleUnderEachKernel) {
  Random64 rng(4242);
  const auto a = MakeList(&rng, 300, 3, 5);
  const auto b = MakeList(&rng, 280, 3, 5);
  const auto skew_a = MakeList(&rng, 6, 400, 0);
  const std::vector<VertexId> expected = Oracle(a, b);
  const std::vector<VertexId> expected_skew = Oracle(skew_a, b);
  for (IntersectKernel k : {IntersectKernel::kScalar, IntersectKernel::kSse,
                            IntersectKernel::kAvx2, IntersectKernel::kAuto}) {
    if (!IntersectKernelSupported(k)) continue;
    ASSERT_TRUE(SetIntersectKernel(k).ok());
    std::vector<VertexId> out;
    EXPECT_EQ(Intersect(a, b, &out), expected.size());
    EXPECT_EQ(out, expected);
    EXPECT_EQ(IntersectCount(a, b), expected.size());
    // Skewed pair takes the galloping arm of the adaptive dispatch.
    out.clear();
    EXPECT_EQ(Intersect(skew_a, b, &out), expected_skew.size());
    EXPECT_EQ(out, expected_skew);
    EXPECT_EQ(IntersectCount(skew_a, b), expected_skew.size());
  }
}

TEST_F(KernelDispatchTest, CountersAttributeCallsToTheActiveKernel) {
  Random64 rng(1);
  const auto a = MakeList(&rng, 64, 2, 0);
  const auto b = MakeList(&rng, 64, 2, 0);
  for (IntersectKernel k : kAllKernels) {
    if (!IntersectKernelSupported(k)) continue;
    ASSERT_TRUE(SetIntersectKernel(k).ok());
    const IntersectCounters before = SnapshotIntersectCounters();
    const uint64_t n = IntersectCount(a, b);
    (void)n;
    const IntersectCounters delta =
        IntersectCounters::Delta(SnapshotIntersectCounters(), before);
    const int idx = static_cast<int>(k);
    EXPECT_EQ(delta.calls[idx], 1u) << IntersectKernelName(k);
    EXPECT_EQ(delta.elements[idx], a.size() + b.size())
        << IntersectKernelName(k);
    EXPECT_EQ(delta.TotalCalls(), 1u) << IntersectKernelName(k);
  }
}

}  // namespace
}  // namespace opt
