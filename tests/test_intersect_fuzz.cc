// Randomized differential tests for every intersection kernel variant
// (scalar merge/galloping/hash, SSE, AVX2, and the hub bitmap kernels)
// against a std::set_intersection oracle, over adversarial inputs:
// empty lists, singletons, all-equal lists, no-overlap interleavings,
// duplicates at SIMD block boundaries, lengths straddling register
// tails (7/8/9, 15/16/17), ids straddling 64-bit word and 256-bit lane
// boundaries, and heavily skewed hub/tail size ratios. Also covers the
// dispatch table itself (parse/set/active, per-kernel counters, the
// bitmap AVX2 feature probe) and the hub-routed entry points over
// random contiguous adjacency slices.
//
// The bitmap fuzz volume is tunable without a rebuild:
//   OPT_FUZZ_CASES=500000 OPT_FUZZ_SEED=n ./test_intersect_fuzz
// A failing trial prints a one-line repro with the exact seed.
#include "graph/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/hub_bitmap.h"
#include "util/random.h"

namespace opt {
namespace {

std::vector<VertexId> Oracle(const std::vector<VertexId>& a,
                             const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

constexpr IntersectKernel kAllKernels[] = {
    IntersectKernel::kScalar, IntersectKernel::kSse, IntersectKernel::kAvx2};

/// Checks every kernel variant (merge, galloping, hash; materializing
/// and counting) against the oracle for one input pair. On hosts
/// without SSE/AVX2 those rows degrade to scalar (still checked).
void CheckAllVariants(const std::vector<VertexId>& a,
                      const std::vector<VertexId>& b,
                      const std::string& label) {
  const std::vector<VertexId> expected = Oracle(a, b);
  for (IntersectKernel kernel : kAllKernels) {
    const std::string tag =
        label + " kernel=" + IntersectKernelName(kernel) + " |a|=" +
        std::to_string(a.size()) + " |b|=" + std::to_string(b.size());
    std::vector<VertexId> merged;
    ASSERT_EQ(IntersectMergeWith(kernel, a, b, &merged), expected.size())
        << tag;
    ASSERT_EQ(merged, expected) << tag;
    ASSERT_EQ(IntersectCountMergeWith(kernel, a, b), expected.size()) << tag;

    std::vector<VertexId> galloped;
    ASSERT_EQ(IntersectGallopingWith(kernel, a, b, &galloped),
              expected.size())
        << tag;
    ASSERT_EQ(galloped, expected) << tag;
    ASSERT_EQ(IntersectCountGallopingWith(kernel, a, b), expected.size())
        << tag;
  }
  std::vector<VertexId> hashed;
  ASSERT_EQ(IntersectHash(a, b, &hashed), expected.size()) << label;
  ASSERT_EQ(hashed, expected) << label;
  ASSERT_EQ(IntersectCountHash(a, b), expected.size()) << label;
}

/// Sorted list with tunable stride and duplicate probability.
std::vector<VertexId> MakeList(Random64* rng, size_t n, uint32_t max_step,
                               uint32_t dup_percent, VertexId start = 0) {
  std::vector<VertexId> out;
  out.reserve(n);
  VertexId v = start;
  for (size_t i = 0; i < n; ++i) {
    if (out.empty() || rng->Uniform(100) >= dup_percent) {
      v += 1 + static_cast<VertexId>(rng->Uniform(max_step));
    }
    out.push_back(v);  // duplicate when v was not advanced
  }
  return out;
}

TEST(IntersectFuzzTest, AdversarialFixedCases) {
  const std::vector<VertexId> empty;
  const std::vector<VertexId> one{7};
  const std::vector<VertexId> run{5, 5, 5, 5, 5, 5, 5, 5, 5};
  const std::vector<VertexId> evens{0, 2, 4, 6, 8, 10, 12, 14, 16, 18};
  const std::vector<VertexId> odds{1, 3, 5, 7, 9, 11, 13, 15, 17, 19};
  const std::vector<VertexId> big{0xFFFFFFF0u, 0xFFFFFFF5u, 0xFFFFFFFEu,
                                  0xFFFFFFFFu};
  CheckAllVariants(empty, empty, "empty-empty");
  CheckAllVariants(empty, evens, "empty-list");
  CheckAllVariants(evens, empty, "list-empty");
  CheckAllVariants(one, one, "singleton-hit");
  CheckAllVariants(one, evens, "singleton-miss");
  CheckAllVariants(run, run, "all-equal");
  CheckAllVariants(run, one, "all-equal-vs-singleton");
  CheckAllVariants(evens, odds, "no-overlap-interleaved");
  CheckAllVariants(evens, evens, "identical");
  // Values above INT32_MAX: catches signed-compare mistakes in the
  // vectorized lower bound (unsigned order needs the sign-flip trick).
  CheckAllVariants(big, big, "unsigned-range");
  CheckAllVariants(big, evens, "unsigned-vs-small");
}

TEST(IntersectFuzzTest, TailLengthsStraddlingSimdRegisters) {
  // Every length pair around the 4-lane and 8-lane block sizes,
  // including 7/8/9 and 15/16/17, at three densities.
  std::vector<size_t> lengths;
  for (size_t n = 0; n <= 18; ++n) lengths.push_back(n);
  for (size_t n : {23u, 24u, 25u, 31u, 32u, 33u}) lengths.push_back(n);
  Random64 rng(2024);
  for (uint32_t max_step : {1u, 3u, 16u}) {
    for (size_t na : lengths) {
      for (size_t nb : lengths) {
        const auto a = MakeList(&rng, na, max_step, /*dup_percent=*/0);
        const auto b = MakeList(&rng, nb, max_step, /*dup_percent=*/0);
        CheckAllVariants(a, b, "tail-sweep");
      }
    }
  }
}

TEST(IntersectFuzzTest, DuplicatesAtBlockBoundaries) {
  // Place runs of equal values so they straddle every 4- and 8-element
  // block boundary of either input — the case where a vectorized
  // block-merge can double-emit if it mishandles duplicate windows.
  Random64 rng(7);
  for (size_t boundary : {4u, 8u, 12u, 16u, 24u, 32u}) {
    for (size_t run_len : {2u, 3u, 5u, 9u}) {
      for (int side = 0; side < 3; ++side) {
        std::vector<VertexId> a, b;
        VertexId v = 1;
        auto fill = [&](std::vector<VertexId>* out, bool with_run) {
          out->clear();
          VertexId x = v;
          const size_t total = boundary + run_len + 8;
          for (size_t i = 0; i < total; ++i) {
            const bool in_run =
                with_run && i >= boundary - 1 && i < boundary - 1 + run_len;
            if (!in_run || out->empty()) {
              x += 1 + static_cast<VertexId>(rng.Uniform(2));
            }
            out->push_back(x);
          }
        };
        fill(&a, side != 1);
        fill(&b, side != 0);
        CheckAllVariants(a, b, "dup-at-boundary");
        v += 100;
      }
    }
  }
}

TEST(IntersectFuzzTest, RandomizedEquivalence) {
  // The bulk of the ≥10k randomized cases: random lengths, strides,
  // duplicate rates, and overlap offsets.
  Random64 rng(0xDEADBEEF);
  for (int trial = 0; trial < 6000; ++trial) {
    const size_t na = rng.Uniform(120);
    const size_t nb = rng.Uniform(120);
    const uint32_t max_step = 1 + static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t dup_percent = static_cast<uint32_t>(rng.Uniform(35));
    const VertexId offset = static_cast<VertexId>(rng.Uniform(64));
    const auto a = MakeList(&rng, na, max_step, dup_percent);
    const auto b = MakeList(&rng, nb, max_step, dup_percent, offset);
    CheckAllVariants(a, b, "random");
  }
}

TEST(IntersectFuzzTest, HeavilySkewedSizeRatios) {
  // |a| << |b|: the galloping regime, exercised in both argument orders.
  Random64 rng(99);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t na = 1 + rng.Uniform(12);
    const size_t nb = 500 + rng.Uniform(1500);
    const auto a =
        MakeList(&rng, na, /*max_step=*/600, static_cast<uint32_t>(
                     rng.Uniform(20)));
    const auto b = MakeList(&rng, nb, /*max_step=*/4,
                            static_cast<uint32_t>(rng.Uniform(20)));
    CheckAllVariants(a, b, "skewed-small-large");
    CheckAllVariants(b, a, "skewed-large-small");
  }
}

// ---------------------------------------------------------------------------
// Bitmap kernels: differential fuzz against the set_intersection oracle.
// ---------------------------------------------------------------------------

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 10);
}

std::vector<VertexId> Dedup(std::vector<VertexId> v) {
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

constexpr IntersectKernel kBitmapKernels[] = {IntersectKernel::kBitmapScalar,
                                              IntersectKernel::kBitmap};

/// Checks both bitmap kernels (sparse probe in both argument orders,
/// dense AND+popcount, materializing and counting) against the
/// duplicate-free oracle: bitmaps have set semantics, so the expected
/// result is std::set_intersection over the deduplicated inputs.
void CheckBitmapVariants(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b,
                         const std::string& label) {
  const std::vector<VertexId> expected = Oracle(Dedup(a), Dedup(b));
  VertexId universe = 1;
  if (!a.empty()) universe = std::max(universe, a.back() + 1);
  if (!b.empty()) universe = std::max(universe, b.back() + 1);
  DenseBitmap dense_a(universe), dense_b(universe);
  dense_a.SetFrom(a);
  dense_b.SetFrom(b);
  for (IntersectKernel kernel : kBitmapKernels) {
    if (!IntersectKernelSupported(kernel)) continue;
    const std::string tag =
        label + " kernel=" + IntersectKernelName(kernel) + " |a|=" +
        std::to_string(a.size()) + " |b|=" + std::to_string(b.size());
    ASSERT_EQ(IntersectCountBitmapSparseWith(kernel, a, dense_b),
              expected.size())
        << tag;
    ASSERT_EQ(IntersectCountBitmapSparseWith(kernel, b, dense_a),
              expected.size())
        << tag;
    std::vector<VertexId> out;
    ASSERT_EQ(IntersectBitmapSparseWith(kernel, a, dense_b, &out),
              expected.size())
        << tag;
    ASSERT_EQ(out, expected) << tag;
    ASSERT_EQ(IntersectCountBitmapDenseWith(kernel, dense_a, dense_b, 0,
                                            universe - 1),
              expected.size())
        << tag;
    out.clear();
    ASSERT_EQ(IntersectBitmapDenseWith(kernel, dense_a, dense_b, 0,
                                       universe - 1, &out),
              expected.size())
        << tag;
    ASSERT_EQ(out, expected) << tag;
  }
}

TEST(BitmapFuzzTest, AdversarialFixedCases) {
  const std::vector<VertexId> empty;
  const std::vector<VertexId> one{7};
  const std::vector<VertexId> run{5, 5, 5, 5, 5, 5, 5, 5, 5};
  const std::vector<VertexId> evens{0, 2, 4, 6, 8, 10, 12, 14, 16, 18};
  const std::vector<VertexId> odds{1, 3, 5, 7, 9, 11, 13, 15, 17, 19};
  CheckBitmapVariants(empty, empty, "empty-empty");
  CheckBitmapVariants(empty, evens, "empty-list");
  CheckBitmapVariants(evens, empty, "list-empty");
  CheckBitmapVariants(one, one, "singleton-hit");
  CheckBitmapVariants(one, evens, "singleton-miss");
  CheckBitmapVariants(run, run, "all-equal");
  CheckBitmapVariants(run, one, "all-equal-vs-singleton");
  CheckBitmapVariants(evens, odds, "no-overlap-interleaved");
  CheckBitmapVariants(evens, evens, "identical");
}

TEST(BitmapFuzzTest, IdsStraddlingWordAndLaneBoundaries) {
  // Ids packed around every 64-bit word edge and 256-bit AVX2 lane edge
  // of the bitmap: the masks for the first/last partial words and the
  // scalar-tail handoff inside the 4-words-per-iteration AVX2 loop are
  // exactly the places an off-by-one would hide.
  const std::vector<VertexId> edges{0,   1,   62,  63,  64,  65,  126, 127,
                                    128, 129, 190, 191, 192, 193, 254, 255,
                                    256, 257, 511, 512, 513, 1023, 1024, 1025};
  std::vector<VertexId> lows, highs;
  for (VertexId v : edges) (v < 192 ? lows : highs).push_back(v);
  CheckBitmapVariants(edges, edges, "word-lane-identical");
  CheckBitmapVariants(lows, edges, "word-lane-prefix");
  CheckBitmapVariants(highs, edges, "word-lane-suffix");
  CheckBitmapVariants(lows, highs, "word-lane-disjoint-split");
  for (VertexId v : edges) {
    CheckBitmapVariants({v}, edges, "word-lane-singleton");
  }
}

TEST(BitmapFuzzTest, RandomizedBitmapEqualsSetIntersection) {
  // The ≥50k-case differential sweep (the per-case helper checks both
  // bitmap kernels in both argument orders plus the dense pair, so the
  // kernel-level case count is a multiple of this). Each trial reseeds
  // from its own derived seed, so the printed repro line replays just
  // the failing trial.
  const uint64_t cases = EnvU64("OPT_FUZZ_CASES", 50000);
  const uint64_t base_seed = EnvU64("OPT_FUZZ_SEED", 0xB17A15EEDull);
  for (uint64_t trial = 0; trial < cases; ++trial) {
    const uint64_t seed = base_seed + trial;
    Random64 rng(seed);
    // Size shapes: tail-tail, hub-tail (both orders), hub-hub.
    const uint32_t shape = static_cast<uint32_t>(rng.Uniform(4));
    const size_t na = shape == 0 || shape == 1 ? rng.Uniform(48)
                                               : 256 + rng.Uniform(1024);
    const size_t nb = shape == 0 || shape == 2 ? rng.Uniform(48)
                                               : 256 + rng.Uniform(1024);
    const uint32_t max_step = 1 + static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t dup_percent = static_cast<uint32_t>(rng.Uniform(35));
    const VertexId offset = static_cast<VertexId>(rng.Uniform(256));
    const auto a = MakeList(&rng, na, max_step, dup_percent);
    const auto b = MakeList(&rng, nb, max_step, dup_percent, offset);
    CheckBitmapVariants(a, b, "bitmap-fuzz seed=" + std::to_string(seed));
    // Sub-range clamp: the dense pair restricted to a random [lo, hi]
    // window must equal the oracle filtered to that window.
    if (!a.empty() && !b.empty()) {
      const VertexId universe = std::max(a.back(), b.back()) + 1;
      VertexId lo = static_cast<VertexId>(rng.Uniform(universe));
      VertexId hi = static_cast<VertexId>(rng.Uniform(universe));
      if (lo > hi) std::swap(lo, hi);
      std::vector<VertexId> window = Oracle(Dedup(a), Dedup(b));
      std::erase_if(window,
                    [lo, hi](VertexId v) { return v < lo || v > hi; });
      DenseBitmap dense_a(universe), dense_b(universe);
      dense_a.SetFrom(a);
      dense_b.SetFrom(b);
      for (IntersectKernel kernel : kBitmapKernels) {
        if (!IntersectKernelSupported(kernel)) continue;
        std::vector<VertexId> out;
        ASSERT_EQ(
            IntersectBitmapDenseWith(kernel, dense_a, dense_b, lo, hi, &out),
            window.size())
            << "clamped seed=" << seed;
        ASSERT_EQ(out, window) << "clamped seed=" << seed;
      }
    }
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "bitmap fuzz repro: OPT_FUZZ_SEED=%" PRIu64
                   " OPT_FUZZ_CASES=1 ./test_intersect_fuzz "
                   "--gtest_filter=BitmapFuzzTest.*\n",
                   seed);
      return;
    }
  }
}

TEST(BitmapFuzzTest, RoutedSlicesMatchScalarMerge) {
  // The hub-routed entry points receive *contiguous slices* of each
  // vertex's full sorted adjacency (succ()/prec() subspans) while the
  // bitmap holds the full list — the clamping invariant. Fuzz random
  // slices through a real HubBitmapIndex against the scalar merge on
  // the same slices; adjacency lists are duplicate-free, so merge and
  // bitmap semantics coincide.
  if (!IntersectKernelSupported(IntersectKernel::kBitmapScalar)) {
    GTEST_SKIP();
  }
  const uint64_t cases = std::max<uint64_t>(EnvU64("OPT_FUZZ_CASES", 50000) / 25, 100);
  const uint64_t base_seed = EnvU64("OPT_FUZZ_SEED", 0x5CA1AB1Eull);
  for (IntersectKernel kernel : kBitmapKernels) {
    if (!IntersectKernelSupported(kernel)) continue;
    ASSERT_TRUE(SetIntersectKernel(kernel).ok());
    for (uint64_t trial = 0; trial < cases; ++trial) {
      const uint64_t seed = base_seed + trial;
      Random64 rng(seed);
      const auto full_a = Dedup(
          MakeList(&rng, 8 + rng.Uniform(512), 3, /*dup_percent=*/0));
      const auto full_b = Dedup(
          MakeList(&rng, 8 + rng.Uniform(512), 3, /*dup_percent=*/0));
      const VertexId universe =
          std::max(full_a.back(), full_b.back()) + 1;
      // va is always a hub; vb is a hub on half the trials, so both the
      // dense×dense and sparse-probe routes get exercised.
      const bool b_is_hub = rng.Uniform(2) == 0;
      HubBitmapIndex index;
      index.Reset(universe, /*degree_threshold=*/0);
      index.Add(0, full_a);
      if (b_is_hub) index.Add(1, full_b);
      HubRoutingScope scope(&index);
      auto slice = [&rng](const std::vector<VertexId>& full) {
        const size_t lo = rng.Uniform(full.size());
        const size_t hi = lo + rng.Uniform(full.size() - lo) + 1;
        return std::span<const VertexId>(full.data() + lo, hi - lo);
      };
      for (int rep = 0; rep < 4; ++rep) {
        const auto sa = slice(full_a);
        const auto sb = slice(full_b);
        const uint64_t expected =
            IntersectCountMergeWith(IntersectKernel::kScalar, sa, sb);
        std::vector<VertexId> expected_list;
        IntersectMergeWith(IntersectKernel::kScalar, sa, sb,
                           &expected_list);
        std::vector<VertexId> routed_list;
        ASSERT_EQ(IntersectCount(0, 1, sa, sb), expected)
            << "routed seed=" << seed << " kernel="
            << IntersectKernelName(kernel);
        ASSERT_EQ(Intersect(0, 1, sa, sb, &routed_list), expected)
            << "routed seed=" << seed;
        ASSERT_EQ(routed_list, expected_list) << "routed seed=" << seed;
        // Swapped order: the hub side flips.
        ASSERT_EQ(IntersectCount(1, 0, sb, sa), expected)
            << "routed-swap seed=" << seed;
      }
      if (::testing::Test::HasFailure()) {
        std::fprintf(stderr,
                     "routed fuzz repro: OPT_FUZZ_SEED=%" PRIu64
                     " OPT_FUZZ_CASES=25 ./test_intersect_fuzz "
                     "--gtest_filter=BitmapFuzzTest.RoutedSlices*\n",
                     seed);
        ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto).ok());
        return;
      }
    }
  }
  ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto).ok());
}

// ---------------------------------------------------------------------------
// Dispatch-table behavior.
// ---------------------------------------------------------------------------

class KernelDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Tests mutate process-wide dispatch state; restore auto-selection.
    ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto).ok());
  }
};

TEST_F(KernelDispatchTest, ParseAcceptsKnownNamesOnly) {
  for (IntersectKernel k :
       {IntersectKernel::kScalar, IntersectKernel::kSse,
        IntersectKernel::kAvx2, IntersectKernel::kBitmap,
        IntersectKernel::kBitmapScalar, IntersectKernel::kAuto}) {
    auto parsed = ParseIntersectKernel(IntersectKernelName(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(ParseIntersectKernel("sse9").ok());
  EXPECT_FALSE(ParseIntersectKernel("").ok());
  EXPECT_FALSE(ParseIntersectKernel("AUTO").ok());
  EXPECT_FALSE(ParseIntersectKernel("bitmaps").ok());
  EXPECT_FALSE(ParseIntersectKernel("BITMAP").ok());
}

TEST_F(KernelDispatchTest, BitmapKernelFeatureProbe) {
  // 'bitmap' needs AVX2: its support tracks the AVX2 merge kernel, and
  // selecting it on a host without AVX2 is a typed InvalidArgument that
  // names the portable fallback — never a silent downgrade.
  EXPECT_EQ(IntersectKernelSupported(IntersectKernel::kBitmap),
            IntersectKernelSupported(IntersectKernel::kAvx2));
  const Status s = SetIntersectKernel(IntersectKernel::kBitmap);
  if (IntersectKernelSupported(IntersectKernel::kBitmap)) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(ActiveIntersectKernel(), IntersectKernel::kBitmap);
  } else {
    ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
    EXPECT_NE(s.ToString().find("AVX2"), std::string::npos)
        << s.ToString();
    EXPECT_NE(s.ToString().find("bitmap_scalar"), std::string::npos)
        << s.ToString();
    // The failed set must not have changed the active kernel family.
    EXPECT_FALSE(IsBitmapKernel(ActiveIntersectKernel()));
  }
  // The scalar popcount fallback is selectable on every host.
  ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kBitmapScalar).ok());
  EXPECT_EQ(ActiveIntersectKernel(), IntersectKernel::kBitmapScalar);
  EXPECT_TRUE(IntersectKernelSupported(IntersectKernel::kBitmapScalar));
}

TEST_F(KernelDispatchTest, BitmapCountersAttributeToTheResolvedKernel) {
  Random64 rng(11);
  const auto sparse = MakeList(&rng, 32, 2, 0);
  const auto dense_ids = MakeList(&rng, 256, 2, 0);
  DenseBitmap dense(dense_ids.back() + 1);
  dense.SetFrom(dense_ids);
  for (IntersectKernel k : kBitmapKernels) {
    if (!IntersectKernelSupported(k)) continue;
    const int idx = static_cast<int>(k);
    const IntersectCounters before = SnapshotIntersectCounters();
    (void)IntersectCountBitmapSparseWith(k, sparse, dense);
    const IntersectCounters delta =
        IntersectCounters::Delta(SnapshotIntersectCounters(), before);
    EXPECT_EQ(delta.calls[idx], 1u) << IntersectKernelName(k);
    // Sparse-probe cost model: probe list plus dense population.
    EXPECT_EQ(delta.elements[idx], sparse.size() + dense.popcount())
        << IntersectKernelName(k);
    EXPECT_EQ(delta.TotalCalls(), 1u) << IntersectKernelName(k);
  }
}

TEST_F(KernelDispatchTest, AutoResolvesToBestSupported) {
  ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto).ok());
  EXPECT_EQ(ActiveIntersectKernel(), BestIntersectKernel());
  EXPECT_TRUE(IntersectKernelSupported(ActiveIntersectKernel()));
  EXPECT_TRUE(IntersectKernelSupported(IntersectKernel::kScalar));
}

TEST_F(KernelDispatchTest, SetHonorsSupportedKernelsAndRejectsOthers) {
  for (IntersectKernel k : kAllKernels) {
    if (IntersectKernelSupported(k)) {
      ASSERT_TRUE(SetIntersectKernel(k).ok());
      EXPECT_EQ(ActiveIntersectKernel(), k);
    } else {
      const Status s = SetIntersectKernel(k);
      EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
    }
  }
}

TEST_F(KernelDispatchTest, DispatchedEntryPointsMatchOracleUnderEachKernel) {
  Random64 rng(4242);
  const auto a = MakeList(&rng, 300, 3, 5);
  const auto b = MakeList(&rng, 280, 3, 5);
  const auto skew_a = MakeList(&rng, 6, 400, 0);
  const std::vector<VertexId> expected = Oracle(a, b);
  const std::vector<VertexId> expected_skew = Oracle(skew_a, b);
  for (IntersectKernel k : {IntersectKernel::kScalar, IntersectKernel::kSse,
                            IntersectKernel::kAvx2, IntersectKernel::kAuto}) {
    if (!IntersectKernelSupported(k)) continue;
    ASSERT_TRUE(SetIntersectKernel(k).ok());
    std::vector<VertexId> out;
    EXPECT_EQ(Intersect(a, b, &out), expected.size());
    EXPECT_EQ(out, expected);
    EXPECT_EQ(IntersectCount(a, b), expected.size());
    // Skewed pair takes the galloping arm of the adaptive dispatch.
    out.clear();
    EXPECT_EQ(Intersect(skew_a, b, &out), expected_skew.size());
    EXPECT_EQ(out, expected_skew);
    EXPECT_EQ(IntersectCount(skew_a, b), expected_skew.size());
  }
}

TEST_F(KernelDispatchTest, CountersAttributeCallsToTheActiveKernel) {
  Random64 rng(1);
  const auto a = MakeList(&rng, 64, 2, 0);
  const auto b = MakeList(&rng, 64, 2, 0);
  for (IntersectKernel k : kAllKernels) {
    if (!IntersectKernelSupported(k)) continue;
    ASSERT_TRUE(SetIntersectKernel(k).ok());
    const IntersectCounters before = SnapshotIntersectCounters();
    const uint64_t n = IntersectCount(a, b);
    (void)n;
    const IntersectCounters delta =
        IntersectCounters::Delta(SnapshotIntersectCounters(), before);
    const int idx = static_cast<int>(k);
    EXPECT_EQ(delta.calls[idx], 1u) << IntersectKernelName(k);
    EXPECT_EQ(delta.elements[idx], a.size() + b.size())
        << IntersectKernelName(k);
    EXPECT_EQ(delta.TotalCalls(), 1u) << IntersectKernelName(k);
  }
}

}  // namespace
}  // namespace opt
