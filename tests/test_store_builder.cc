// Tests for the out-of-core pipeline: external sorter and the
// edge-list-to-store builder, cross-checked against the in-memory path.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "baselines/inmemory.h"
#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "graph/reorder.h"
#include "storage/external_sort.h"
#include "storage/record_scanner.h"
#include "storage/store_builder.h"
#include "test_helpers.h"
#include "util/random.h"

namespace opt {
namespace {

struct U64Record {
  uint64_t value;
  bool operator<(const U64Record& o) const { return value < o.value; }
};

TEST(ExternalSorterTest, InMemoryOnlyPath) {
  ExternalSorter<U64Record> sorter(Env::Default(), testutil::ProcessTempDir(),
                                   "sorter_mem", 1 << 20);
  for (uint64_t v : {5ull, 1ull, 9ull, 3ull}) {
    ASSERT_TRUE(sorter.Add({v}).ok());
  }
  EXPECT_EQ(sorter.num_runs(), 0u);  // fits in memory
  std::vector<uint64_t> out;
  ASSERT_TRUE(sorter
                  .Merge([&](const U64Record& r) {
                    out.push_back(r.value);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 3, 5, 9}));
}

TEST(ExternalSorterTest, SpillsAndMergesManyRuns) {
  // A budget of 64 bytes = 8 records per run forces many spills.
  ExternalSorter<U64Record> sorter(Env::Default(), testutil::ProcessTempDir(),
                                   "sorter_spill", 64);
  Random64 rng(7);
  std::vector<uint64_t> expected;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Next() % 100000;
    expected.push_back(v);
    ASSERT_TRUE(sorter.Add({v}).ok());
  }
  EXPECT_GT(sorter.num_runs(), 100u);
  std::sort(expected.begin(), expected.end());
  std::vector<uint64_t> out;
  out.reserve(expected.size());
  ASSERT_TRUE(sorter
                  .Merge([&](const U64Record& r) {
                    out.push_back(r.value);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(out, expected);
}

TEST(ExternalSorterTest, EmptyInput) {
  ExternalSorter<U64Record> sorter(Env::Default(), testutil::ProcessTempDir(),
                                   "sorter_empty", 1024);
  int calls = 0;
  ASSERT_TRUE(sorter
                  .Merge([&](const U64Record&) {
                    ++calls;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST(ExternalSorterTest, ConsumerErrorPropagates) {
  ExternalSorter<U64Record> sorter(Env::Default(), testutil::ProcessTempDir(),
                                   "sorter_err", 1024);
  ASSERT_TRUE(sorter.Add({1}).ok());
  Status s = sorter.Merge(
      [](const U64Record&) { return Status::Aborted("stop"); });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

class StoreBuilderTest : public ::testing::Test {
 protected:
  std::string WriteEdgeFile(const std::vector<std::string>& lines,
                            const char* name) {
    const std::string path = testutil::ProcessTempDir() + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    for (const auto& line : lines) {
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
    }
    std::fclose(f);
    return path;
  }
};

TEST_F(StoreBuilderTest, MatchesInMemoryPath) {
  // Random edges -> text file -> out-of-core builder, compared with the
  // in-memory GraphBuilder + GraphStore::Create path.
  RmatOptions gen;
  gen.scale = 9;
  gen.edge_factor = 6;
  gen.seed = 77;
  CSRGraph reference_raw = GenerateRmat(gen);
  std::vector<std::string> lines = {"# header comment"};
  for (VertexId u = 0; u < reference_raw.num_vertices(); ++u) {
    for (VertexId v : reference_raw.Successors(u)) {
      lines.push_back(std::to_string(u) + " " + std::to_string(v));
    }
  }
  const std::string edge_path = WriteEdgeFile(lines, "builder_edges.txt");

  StoreBuildOptions options;
  options.page_size = 256;
  options.degree_order = true;
  options.memory_budget_bytes = 1 << 12;  // force spills
  options.temp_dir = testutil::ProcessTempDir();
  const std::string base = testutil::ProcessTempDir() + "/builder_store";
  auto stats =
      BuildStoreFromEdgeList(Env::Default(), edge_path, base, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->kept_edges, reference_raw.num_edges());
  EXPECT_GT(stats->sort_runs, 0u);

  // Reference: in-memory degree order (same stable tie-break).
  CSRGraph reference = DegreeOrder(reference_raw).graph;
  auto store = GraphStore::Open(Env::Default(), base);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_vertices(), reference.num_vertices());
  EXPECT_EQ((*store)->num_directed_edges(),
            reference.num_directed_edges());
  // Adjacency lists identical record by record.
  ASSERT_TRUE(ScanRecords(**store, 0, (*store)->num_pages() - 1,
                          [&](VertexId v, std::span<const VertexId> n) {
                            auto expected = reference.Neighbors(v);
                            EXPECT_TRUE(std::equal(
                                expected.begin(), expected.end(),
                                n.begin(), n.end()))
                                << "vertex " << v;
                          })
                  .ok());
  // And the triangulation agrees with the oracle.
  OptOptions opt_options;
  opt_options.m_in =
      std::max((*store)->MaxRecordPages(), (*store)->num_pages() / 5);
  opt_options.m_ex = opt_options.m_in;
  EdgeIteratorModel model;
  OptRunner runner(store->get(), &model, opt_options);
  CountingSink sink;
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), testutil::OracleCount(reference_raw));
}

TEST_F(StoreBuilderTest, DedupAndSelfLoops) {
  const std::string path = WriteEdgeFile(
      {"0 1", "1 0", "0 1", "2 2", "1 2", "# comment", "0 2"},
      "builder_dedup.txt");
  StoreBuildOptions options;
  options.page_size = 256;
  options.degree_order = false;
  options.temp_dir = testutil::ProcessTempDir();
  const std::string base = testutil::ProcessTempDir() + "/builder_dedup_store";
  auto stats = BuildStoreFromEdgeList(Env::Default(), path, base, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->input_edges, 6u);
  EXPECT_EQ(stats->self_loops, 1u);
  EXPECT_EQ(stats->kept_edges, 3u);  // triangle 0-1-2
  auto store = GraphStore::Open(Env::Default(), base);
  ASSERT_TRUE(store.ok());
  CountingSink sink;
  EdgeIteratorModel model;
  OptOptions opt_options;
  opt_options.m_in = 2;
  opt_options.m_ex = 2;
  OptRunner runner(store->get(), &model, opt_options);
  ASSERT_TRUE(runner.Run(&sink, nullptr).ok());
  EXPECT_EQ(sink.count(), 1u);
}

TEST_F(StoreBuilderTest, EmptyInputProducesEmptyStore) {
  const std::string path = WriteEdgeFile({"# nothing"}, "builder_empty.txt");
  StoreBuildOptions options;
  options.temp_dir = testutil::ProcessTempDir();
  const std::string base = testutil::ProcessTempDir() + "/builder_empty_store";
  auto stats = BuildStoreFromEdgeList(Env::Default(), path, base, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->kept_edges, 0u);
  auto store = GraphStore::Open(Env::Default(), base);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_vertices(), 0u);
}

TEST_F(StoreBuilderTest, RejectsMalformedLine) {
  const std::string path =
      WriteEdgeFile({"0 1", "broken line"}, "builder_bad.txt");
  StoreBuildOptions options;
  options.temp_dir = testutil::ProcessTempDir();
  auto stats = BuildStoreFromEdgeList(
      Env::Default(), path, testutil::ProcessTempDir() + "/builder_bad_store",
      options);
  EXPECT_TRUE(stats.status().IsCorruption());
}

}  // namespace
}  // namespace opt
