#!/usr/bin/env bash
# Perf-regression gate: runs the benchmark suite in quick mode and
# compares the fresh numbers against the committed BENCH_*.json
# baselines with tools/bench_check (DESIGN.md §13).
#
# Three experiments are gated:
#   - bench_ablation_overlap  → BENCH_overlap.json  (overlap fractions,
#     profiler overhead; host-invariant, always enforced)
#   - bench_shard_throughput  → BENCH_shard.json    (speedup ratio and
#     error/partial counts enforced; qps/latency informational unless
#     the host fingerprint matches the baseline's)
#   - bench_micro (BM_Hybrid) → BENCH_micro.json    (items/sec,
#     informational across hosts)
# Each experiment runs twice and bench_check judges best-of-2, so one
# noisy CI run cannot flake the gate. A final self-test doctors a fresh
# file into a regression and asserts the gate actually fails on it.
#
# Fresh JSON is left in $BENCH_ARTIFACT_DIR (if set) for CI upload.
#
#   scripts/bench_check_gate.sh [BUILD_DIR]    (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
for bin in bench/bench_ablation_overlap bench/bench_shard_throughput \
           bench/bench_micro tools/bench_check; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "missing $BUILD_DIR/$bin — build the '$(basename "$bin")' target first" >&2
    exit 2
  fi
done

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

fail=0

echo "== fresh runs: bench_ablation_overlap (best-of-2)"
for i in 1 2; do
  "$BUILD_DIR/bench/bench_ablation_overlap" --scale_shift 2 \
    --json_out "$WORK_DIR/overlap_$i.json" > /dev/null
done
echo "== gate: BENCH_overlap.json"
"$BUILD_DIR/tools/bench_check" --baseline BENCH_overlap.json \
  --fresh "$WORK_DIR/overlap_1.json" "$WORK_DIR/overlap_2.json" || fail=1

echo "== fresh runs: bench_shard_throughput (best-of-2)"
for i in 1 2; do
  "$BUILD_DIR/bench/bench_shard_throughput" --scale_shift 2 \
    --json_out "$WORK_DIR/shard_$i.json" > /dev/null
done
echo "== gate: BENCH_shard.json"
"$BUILD_DIR/tools/bench_check" --baseline BENCH_shard.json \
  --fresh "$WORK_DIR/shard_1.json" "$WORK_DIR/shard_2.json" || fail=1

echo "== fresh runs: bench_micro BM_Hybrid (best-of-2)"
for i in 1 2; do
  "$BUILD_DIR/bench/bench_micro" --benchmark_filter='BM_Hybrid' \
    --benchmark_min_time=0.05 --benchmark_format=json \
    --benchmark_out="$WORK_DIR/micro_$i.json" > /dev/null
done
echo "== gate: BENCH_micro.json"
"$BUILD_DIR/tools/bench_check" --baseline BENCH_micro.json \
  --fresh "$WORK_DIR/micro_1.json" "$WORK_DIR/micro_2.json" || fail=1

echo "== self-test: a doctored regression must FAIL the gate"
# Collapse micro_overlap in both fresh copies far past its tolerance;
# bench_check must exit 1 (regression), not 0 and not 2 (usage/parse).
for i in 1 2; do
  sed 's/"micro_overlap":[0-9.]*/"micro_overlap":0.0001/' \
    "$WORK_DIR/overlap_$i.json" > "$WORK_DIR/doctored_$i.json"
done
set +e
"$BUILD_DIR/tools/bench_check" --baseline BENCH_overlap.json \
  --fresh "$WORK_DIR/doctored_1.json" "$WORK_DIR/doctored_2.json" \
  > "$WORK_DIR/doctored.out" 2>&1
doctored_exit=$?
set -e
if [[ "$doctored_exit" -ne 1 ]]; then
  echo "FAIL: doctored regression exited $doctored_exit (want 1)" >&2
  cat "$WORK_DIR/doctored.out" >&2
  fail=1
else
  echo "doctored regression correctly rejected (exit 1)"
fi

if [[ -n "${BENCH_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$BENCH_ARTIFACT_DIR"
  cp "$WORK_DIR"/overlap_*.json "$WORK_DIR"/shard_*.json \
     "$WORK_DIR"/micro_*.json "$BENCH_ARTIFACT_DIR/"
  echo "fresh bench JSON copied to $BENCH_ARTIFACT_DIR"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "bench_check gate: FAIL" >&2
  exit 1
fi
echo "bench_check gate: PASS"
