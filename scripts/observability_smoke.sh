#!/usr/bin/env bash
# End-to-end observability smoke test: starts opt_server with metrics
# dumping, tracing, and profile logging enabled, runs COUNT + STATS +
# PROFILE through opt_client, and asserts that (a) the STATS exposition
# carries the core registry counters and latency percentiles, (b) the
# PROFILE reply reports non-zero micro overlap (CPU really did run
# while reads were in flight) plus a cost-model residual, and the
# server appended the run to --profile-out, and (c) the shutdown trace
# file is Chrome trace_event JSON containing OPT phase spans and the
# profiler's overlap counter tracks.
#
#   scripts/observability_smoke.sh [BUILD_DIR]    (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
for bin in tools/graph_gen tools/opt_server tools/opt_client; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "missing $BUILD_DIR/$bin — build the '$(basename "$bin")' target first" >&2
    exit 2
  fi
done

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/opt.sock"
TRACE="$WORK_DIR/trace.json"
SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

echo "== generating graph store"
"$BUILD_DIR/tools/graph_gen" --model rmat --scale 12 --edge_factor 16 \
  --seed 7 --store "$WORK_DIR/g" > /dev/null

echo "== starting opt_server (metrics dump + tracing on)"
# --default_pages 8 keeps the buffer budget below the graph size so the
# run exercises the external triangulation and thread-morph paths (and
# their trace spans), not just the in-memory fast path.
OPT_LOG_LEVEL=info "$BUILD_DIR/tools/opt_server" --unix "$SOCK" \
  --graph "smoke=$WORK_DIR/g" --workers 2 --default_pages 8 \
  --metrics-dump-interval 1 --trace-out "$TRACE" \
  --profile-out "$WORK_DIR/profiles.jsonl" \
  > "$WORK_DIR/server.out" 2> "$WORK_DIR/server.err" &
SERVER_PID=$!

for _ in $(seq 1 50); do
  [[ -S "$SOCK" ]] && break
  sleep 0.1
done
[[ -S "$SOCK" ]] || { echo "server did not come up"; cat "$WORK_DIR/server.err"; exit 1; }

# PROFILE goes first, while the shared pool is still cold: a warmed
# pool serves every external page from memory, the run does no real
# reads, and micro overlap is legitimately zero — not what we want to
# assert.
echo "== PROFILE"
PROFILE="$("$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op profile --graph smoke)"
echo "$PROFILE"

MICRO="$(sed -n 's/.*micro (CPU busy while reads in flight): \([0-9.]*\)%.*/\1/p' <<< "$PROFILE")"
[[ -n "$MICRO" ]] || { echo "FAIL: PROFILE output missing the micro-overlap line" >&2; exit 1; }
python3 - "$MICRO" <<'EOF'
import sys
micro = float(sys.argv[1])
if not 0.0 < micro <= 100.0:
    sys.exit(f"FAIL: micro overlap {micro}% not in (0, 100] — "
             "the profiled run never had CPU and in-flight reads together")
print(f"micro overlap {micro}% OK")
EOF
grep -qF "residual:" <<< "$PROFILE" || {
  echo "FAIL: PROFILE output missing the cost-model residual" >&2; exit 1; }

[[ -s "$WORK_DIR/profiles.jsonl" ]] || {
  echo "FAIL: --profile-out got no profile line" >&2; exit 1; }
grep -qF '"micro_overlap"' "$WORK_DIR/profiles.jsonl" || {
  echo "FAIL: --profile-out line missing micro_overlap" >&2; exit 1; }

echo "== COUNT"
"$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op count --graph smoke
# A second identical COUNT exercises the result cache / coalescing path.
"$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op count --graph smoke > /dev/null

echo "== STATS"
STATS="$("$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op stats)"
echo "$STATS"

missing=0
for key in scheduler.submitted pool.fetch.hits pool.fetch.lookups \
           opt.internal.cache_hits opt.external.cache_hits \
           query.latency_us "pool hit rate"; do
  if ! grep -qF "$key" <<< "$STATS"; then
    echo "FAIL: STATS exposition missing '$key'" >&2
    missing=1
  fi
done
[[ "$missing" -eq 0 ]] || exit 1

echo "== waiting for a metrics dump on stderr"
for _ in $(seq 1 30); do
  grep -q "metrics dump" "$WORK_DIR/server.err" && break
  sleep 0.1
done
grep -q "metrics dump" "$WORK_DIR/server.err" || {
  echo "FAIL: no periodic metrics dump in server log" >&2
  cat "$WORK_DIR/server.err" >&2
  exit 1
}

echo "== shutting down and checking trace"
kill "$SERVER_PID"
wait "$SERVER_PID" || true
SERVER_PID=""

[[ -s "$TRACE" ]] || { echo "FAIL: trace file missing/empty" >&2; exit 1; }
python3 - "$TRACE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e["name"] for e in events}
required = {"opt.run", "phaseA.load", "internal.main", "external.chunk",
            "morph.to_external", "query.execute",
            # Counter tracks sampled by the overlap profiler during the
            # PROFILE query.
            "overlap.cpu_roles", "overlap.io_inflight"}
missing = required - names
if missing:
    sys.exit(f"FAIL: trace missing spans {sorted(missing)}; has {sorted(names)}")
counters = sum(1 for e in events if e.get("ph") == "C")
print(f"trace OK: {len(events)} events ({counters} counter samples), "
      f"spans include {sorted(required)}")
EOF

echo "observability smoke: PASS"
