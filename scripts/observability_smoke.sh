#!/usr/bin/env bash
# End-to-end observability smoke test: starts opt_server with metrics
# dumping, tracing, and profile logging enabled, runs COUNT + STATS +
# PROFILE through opt_client, and asserts that (a) the STATS exposition
# carries the core registry counters and latency percentiles, (b) the
# PROFILE reply reports non-zero micro overlap (CPU really did run
# while reads were in flight) plus a cost-model residual, and the
# server appended the run to --profile-out, and (c) the shutdown trace
# file is Chrome trace_event JSON containing OPT phase spans and the
# profiler's overlap counter tracks.
#
# Then the distributed phase: partitions the graph into a 2-shard fleet
# behind opt_router, scrapes BOTH Prometheus endpoints (server and
# router — windowed rates, fleet-merged histograms, per-shard up
# gauges), runs `opt_client --op trace` through the router, and asserts
# the merged fleet trace is valid JSON carrying spans from at least two
# distinct pids. The merged trace is left at $TRACE_ARTIFACT_DIR (if
# set) for CI artifact upload.
#
#   scripts/observability_smoke.sh [BUILD_DIR]    (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
for bin in tools/graph_gen tools/graph_partition tools/opt_server \
           tools/opt_client tools/opt_router; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "missing $BUILD_DIR/$bin — build the '$(basename "$bin")' target first" >&2
    exit 2
  fi
done

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/opt.sock"
TRACE="$WORK_DIR/trace.json"
SERVER_PID=""
ROUTER_PID=""
cleanup() {
  for pid in "$ROUTER_PID" "$SERVER_PID"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# GET the body of a local URL (no curl dependency in minimal images).
scrape() {
  python3 - "$1" <<'EOF'
import sys, urllib.request
with urllib.request.urlopen(sys.argv[1], timeout=10) as r:
    sys.stdout.write(r.read().decode())
EOF
}

echo "== generating graph store"
"$BUILD_DIR/tools/graph_gen" --model rmat --scale 12 --edge_factor 16 \
  --seed 7 --store "$WORK_DIR/g" > /dev/null

echo "== starting opt_server (metrics dump + tracing on)"
# --default_pages 8 keeps the buffer budget below the graph size so the
# run exercises the external triangulation and thread-morph paths (and
# their trace spans), not just the in-memory fast path.
OPT_LOG_LEVEL=info "$BUILD_DIR/tools/opt_server" --unix "$SOCK" \
  --graph "smoke=$WORK_DIR/g" --workers 2 --default_pages 8 \
  --metrics-dump-interval 1 --metrics-port 0 --trace-out "$TRACE" \
  --profile-out "$WORK_DIR/profiles.jsonl" \
  > "$WORK_DIR/server.out" 2> "$WORK_DIR/server.err" &
SERVER_PID=$!

for _ in $(seq 1 50); do
  [[ -S "$SOCK" ]] && break
  sleep 0.1
done
[[ -S "$SOCK" ]] || { echo "server did not come up"; cat "$WORK_DIR/server.err"; exit 1; }

# PROFILE goes first, while the shared pool is still cold: a warmed
# pool serves every external page from memory, the run does no real
# reads, and micro overlap is legitimately zero — not what we want to
# assert.
echo "== PROFILE"
PROFILE="$("$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op profile --graph smoke)"
echo "$PROFILE"

MICRO="$(sed -n 's/.*micro (CPU busy while reads in flight): \([0-9.]*\)%.*/\1/p' <<< "$PROFILE")"
[[ -n "$MICRO" ]] || { echo "FAIL: PROFILE output missing the micro-overlap line" >&2; exit 1; }
python3 - "$MICRO" <<'EOF'
import sys
micro = float(sys.argv[1])
if not 0.0 < micro <= 100.0:
    sys.exit(f"FAIL: micro overlap {micro}% not in (0, 100] — "
             "the profiled run never had CPU and in-flight reads together")
print(f"micro overlap {micro}% OK")
EOF
grep -qF "residual:" <<< "$PROFILE" || {
  echo "FAIL: PROFILE output missing the cost-model residual" >&2; exit 1; }

[[ -s "$WORK_DIR/profiles.jsonl" ]] || {
  echo "FAIL: --profile-out got no profile line" >&2; exit 1; }
grep -qF '"micro_overlap"' "$WORK_DIR/profiles.jsonl" || {
  echo "FAIL: --profile-out line missing micro_overlap" >&2; exit 1; }

echo "== COUNT"
"$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op count --graph smoke
# A second identical COUNT exercises the result cache / coalescing path.
"$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op count --graph smoke > /dev/null

echo "== STATS"
STATS="$("$BUILD_DIR/tools/opt_client" --unix "$SOCK" --op stats)"
echo "$STATS"

missing=0
for key in scheduler.submitted pool.fetch.hits pool.fetch.lookups \
           opt.internal.cache_hits opt.external.cache_hits \
           query.latency_us "pool hit rate" \
           perf.backend= opt.perf.task_clock_ns "perf backend:"; do
  if ! grep -qF "$key" <<< "$STATS"; then
    echo "FAIL: STATS exposition missing '$key'" >&2
    missing=1
  fi
done
[[ "$missing" -eq 0 ]] || exit 1

echo "== waiting for a metrics dump on stderr"
for _ in $(seq 1 30); do
  grep -q "metrics dump" "$WORK_DIR/server.err" && break
  sleep 0.1
done
grep -q "metrics dump" "$WORK_DIR/server.err" || {
  echo "FAIL: no periodic metrics dump in server log" >&2
  cat "$WORK_DIR/server.err" >&2
  exit 1
}

echo "== scraping the server's Prometheus endpoint"
SERVER_METRICS_PORT="$(sed -n 's|metrics on http://127.0.0.1:\([0-9]*\)/metrics|\1|p' "$WORK_DIR/server.out")"
[[ -n "$SERVER_METRICS_PORT" ]] || {
  echo "FAIL: opt_server did not announce a metrics port" >&2
  cat "$WORK_DIR/server.out" >&2; exit 1; }
# Two scrapes a second apart so the window sampler has >= 2 snapshots
# and the per-second rate gauges appear.
scrape "http://127.0.0.1:$SERVER_METRICS_PORT/metrics" > /dev/null
sleep 1.2
SERVER_SCRAPE="$(scrape "http://127.0.0.1:$SERVER_METRICS_PORT/metrics")"
for key in "# TYPE" "pool_fetch_lookups" "_per_sec" \
           "opt_metrics_window_seconds" "opt_graph_pages{graph=\"smoke\"}" \
           "query_latency_us{quantile=" \
           "perf_backend" "opt_perf_task_clock_ns"; do
  grep -qF "$key" <<< "$SERVER_SCRAPE" || {
    echo "FAIL: server scrape missing '$key'" >&2
    echo "$SERVER_SCRAPE" >&2; exit 1; }
done
echo "server scrape OK ($(wc -l <<< "$SERVER_SCRAPE") lines)"

echo "== shutting down and checking trace"
kill "$SERVER_PID"
wait "$SERVER_PID" || true
SERVER_PID=""

[[ -s "$TRACE" ]] || { echo "FAIL: trace file missing/empty" >&2; exit 1; }
python3 - "$TRACE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e["name"] for e in events}
required = {"opt.run", "phaseA.load", "internal.main", "external.chunk",
            "morph.to_external", "query.execute",
            # Counter tracks sampled by the overlap profiler during the
            # PROFILE query.
            "overlap.cpu_roles", "overlap.io_inflight",
            # Per-phase PMU counter track (perf_counters.h); present on
            # every backend rung because task-clock has no failure mode.
            "perf.task_clock_ms"}
missing = required - names
if missing:
    sys.exit(f"FAIL: trace missing spans {sorted(missing)}; has {sorted(names)}")
counters = sum(1 for e in events if e.get("ph") == "C")
print(f"trace OK: {len(events)} events ({counters} counter samples), "
      f"spans include {sorted(required)}")
EOF

echo "== distributed phase: 2-shard fleet behind opt_router"
"$BUILD_DIR/tools/graph_partition" --store "$WORK_DIR/g" \
  --output "$WORK_DIR/fleet" --shards 2 --graph g > /dev/null

OPT_LOG_LEVEL=info "$BUILD_DIR/tools/opt_router" \
  --manifest "$WORK_DIR/fleet.manifest" \
  --spawn "$BUILD_DIR/tools/opt_server" --port 0 --metrics-port 0 \
  > "$WORK_DIR/router.out" 2> "$WORK_DIR/router.err" &
ROUTER_PID=$!

ROUTER_PORT=""
for _ in $(seq 1 100); do
  ROUTER_PORT="$(sed -n 's|listening on 127.0.0.1:\([0-9]*\)|\1|p' "$WORK_DIR/router.out")"
  [[ -n "$ROUTER_PORT" ]] && break
  sleep 0.1
done
[[ -n "$ROUTER_PORT" ]] || {
  echo "FAIL: router did not come up" >&2; cat "$WORK_DIR/router.err" >&2; exit 1; }
ROUTER_METRICS_PORT="$(sed -n 's|metrics on http://127.0.0.1:\([0-9]*\)/metrics|\1|p' "$WORK_DIR/router.out")"
[[ -n "$ROUTER_METRICS_PORT" ]] || {
  echo "FAIL: router did not announce a metrics port" >&2
  cat "$WORK_DIR/router.out" >&2; exit 1; }

echo "== merged COUNT + traced COUNT through the router"
"$BUILD_DIR/tools/opt_client" --port "$ROUTER_PORT" --op count --graph g
MERGED_TRACE="$WORK_DIR/fleet_trace.json"
"$BUILD_DIR/tools/opt_client" --port "$ROUTER_PORT" --op trace --graph g \
  --out "$MERGED_TRACE"

echo "== scraping the router's fleet Prometheus endpoint"
ROUTER_SCRAPE="$(scrape "http://127.0.0.1:$ROUTER_METRICS_PORT/metrics")"
for key in "opt_shard_up{shard=\"0\"} 1" "opt_shard_up{shard=\"1\"} 1" \
           "# TYPE fleet_" "_count"; do
  grep -qF "$key" <<< "$ROUTER_SCRAPE" || {
    echo "FAIL: router scrape missing '$key'" >&2
    echo "$ROUTER_SCRAPE" >&2; exit 1; }
done
echo "router scrape OK ($(wc -l <<< "$ROUTER_SCRAPE") lines)"

echo "== checking the merged fleet trace"
python3 - "$MERGED_TRACE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
pids = {e["pid"] for e in events if e.get("ph") == "X"}
if len(pids) < 2:
    sys.exit(f"FAIL: merged trace has spans from {len(pids)} pid(s) — "
             "expected the router plus at least one shard")
names = {e["name"] for e in events}
for required in ("router.count", "rpc.count", "query.count"):
    if required not in names:
        sys.exit(f"FAIL: merged trace missing '{required}' spans; has {sorted(names)}")
flows = sum(1 for e in events if e.get("ph") in ("s", "f"))
if flows == 0:
    sys.exit("FAIL: merged trace has no cross-process flow arrows")
print(f"fleet trace OK: {len(events)} events from {len(pids)} pids, "
      f"{flows} flow endpoints")
EOF

# Preserve the merged trace for CI artifact upload.
if [[ -n "${TRACE_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$TRACE_ARTIFACT_DIR"
  cp "$MERGED_TRACE" "$TRACE_ARTIFACT_DIR/fleet_trace.json"
  echo "merged trace copied to $TRACE_ARTIFACT_DIR/fleet_trace.json"
fi

kill "$ROUTER_PID"
wait "$ROUTER_PID" 2>/dev/null || true
ROUTER_PID=""

echo "observability smoke: PASS"
