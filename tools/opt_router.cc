// Fan-out query router for a sharded graph: speaks the opt_server wire
// protocol to clients and forwards COUNT/LIST/STATS/ADD_EDGES/
// REMOVE_EDGES/SUBSCRIBE_COUNT to the shard servers named by a
// graph_partition manifest, merging the answers (exact COUNT via ghost
// subtraction; see src/shard/router.h for the per-op semantics and the
// partial_shards degradation contract).
//
//   opt_router --manifest /path/prefix.manifest \
//       (--spawn /path/to/opt_server | --attach host:port,host:port,...) \
//       [--port N] [--workers N] [--shard_deadline_ms N] \
//       [--retry_attempts N] [--no_restart] \
//       [--metrics-port N] [--trace-out /path.json] [--no_trace] \
//       [--shard_arg FLAG ...]   (extra flags for spawned shards)
//
// --spawn forks one opt_server per shard (ephemeral ports, supervised
// and respawned on crash unless --no_restart); --attach adopts running
// servers, one endpoint per shard in manifest order. Extra positional
// arguments are passed through to every spawned shard (e.g. --no_cache
// after a bare `--`). --port 0 binds an ephemeral port, printed as
// "listening on 127.0.0.1:<port>" exactly like opt_server so the same
// scripts drive both.
//
// --metrics-port serves Prometheus exposition on
// http://127.0.0.1:N/metrics: the router's own registry + windowed
// rates, per-shard up{shard=...} health gauges, and fleet_*-prefixed
// count-weight-merged histograms pulled live from every shard.
// Tracing defaults on (bounded 16Ki ring; --no_trace disables) so
// TRACE_PULL can assemble the router's spans with every shard's.
// --trace-out writes the MERGED fleet trace (router + all shards,
// pulled at shutdown) as Perfetto-openable JSON.
// Runs until SIGINT/SIGTERM.
#include <signal.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics_http.h"
#include "service/client.h"
#include "shard/router.h"
#include "shard/shard_plan.h"
#include "shard/shard_set.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

using namespace opt;

namespace {

volatile sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

/// Parses "host:port,host:port,..." (bare "port" means 127.0.0.1).
Status ParseEndpoints(const std::string& text,
                      std::vector<ShardEndpoint>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    ShardEndpoint endpoint;
    const size_t colon = item.rfind(':');
    const std::string port_text =
        colon == std::string::npos ? item : item.substr(colon + 1);
    if (colon != std::string::npos) endpoint.host = item.substr(0, colon);
    const long port = std::strtol(port_text.c_str(), nullptr, 10);
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument("bad endpoint '" + item + "'");
    }
    endpoint.port = static_cast<uint16_t>(port);
    out->push_back(std::move(endpoint));
    pos = end + 1;
  }
  if (out->empty()) return Status::InvalidArgument("--attach is empty");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok() || !cl->Has("manifest") ||
      (cl->Has("spawn") == cl->Has("attach"))) {
    std::fprintf(stderr,
                 "usage: %s --manifest /path.manifest "
                 "(--spawn /path/opt_server | --attach host:port,...) "
                 "[--port N] [--workers N] [--shard_deadline_ms N] "
                 "[--retry_attempts N] [--no_restart] [shard flags...]\n",
                 argv[0]);
    return 2;
  }

  auto manifest = ShardManifest::Load(cl->GetString("manifest"));
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s\n", manifest.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "manifest: graph '%s', %u shards, %llu ghosts\n",
               manifest->graph.c_str(), manifest->num_shards(),
               static_cast<unsigned long long>(
                   manifest->ghost_triangles_total()));

  ShardSetOptions set_options;
  set_options.restart_on_exit = !cl->GetBool("no_restart", false);
  const bool spawn = cl->Has("spawn");
  if (spawn) {
    set_options.command = {cl->GetString("spawn")};
    // Positionals (after a bare `--` or anywhere) pass through to every
    // spawned shard server.
    for (const std::string& arg : cl->positional()) {
      set_options.extra_args.push_back(arg);
    }
  }
  ShardSet shards(*manifest, set_options);
  Status status;
  if (spawn) {
    status = shards.Spawn();
  } else {
    std::vector<ShardEndpoint> endpoints;
    status = ParseEndpoints(cl->GetString("attach"), &endpoints);
    if (status.ok()) status = shards.Attach(std::move(endpoints));
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (!shards.WaitHealthy(15000)) {
    std::fprintf(stderr, "not every shard passed a health probe in 15s\n");
    shards.Stop();
    return 1;
  }
  for (uint32_t i = 0; i < shards.num_shards(); ++i) {
    const ShardEndpoint endpoint = shards.endpoint(i);
    std::fprintf(stderr, "shard %u: %s:%u [%u,%u)\n", i,
                 endpoint.host.c_str(), endpoint.port,
                 manifest->shards[i].range_lo,
                 manifest->shards[i].range_hi);
  }

  // Bounded ring, on by default: the fleet trace is assembled from this
  // recorder plus every shard's via TRACE_PULL.
  const bool tracing = !cl->GetBool("no_trace", false);
  TraceRecorder trace_recorder(1u << 14);
  if (tracing) StartTracing(&trace_recorder);

  RouterOptions router_options;
  router_options.workers =
      static_cast<uint32_t>(cl->GetInt("workers", 8));
  router_options.shard_deadline_ms =
      static_cast<uint64_t>(cl->GetInt("shard_deadline_ms", 30000));
  router_options.connect_retry.max_attempts =
      static_cast<uint32_t>(cl->GetInt("retry_attempts", 6));
  QueryRouter router(&shards, router_options);
  status = router.ListenTcp(static_cast<uint16_t>(cl->GetInt("port", 0)));
  if (status.ok()) status = router.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    shards.Stop();
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", router.bound_port());
  std::fflush(stdout);

  // --metrics-port: router registry + windowed rates + the fleet view
  // (per-shard up gauges, fleet_* merged histograms pulled per scrape).
  std::unique_ptr<MetricsWindow> window;
  std::unique_ptr<MetricsHttpServer> metrics_http;
  if (cl->Has("metrics-port")) {
    window = std::make_unique<MetricsWindow>(&Metrics());
    window->Start(1000);
    MetricsWindow* window_ptr = window.get();
    QueryRouter* router_ptr = &router;
    metrics_http =
        std::make_unique<MetricsHttpServer>([window_ptr, router_ptr] {
          return Metrics().ExposePrometheus() +
                 window_ptr->ExposePrometheus() +
                 router_ptr->FleetPrometheus();
        });
    const Status metrics_status = metrics_http->Start(
        static_cast<uint16_t>(cl->GetInt("metrics-port", 0)));
    if (!metrics_status.ok()) {
      std::fprintf(stderr, "metrics endpoint: %s\n",
                   metrics_status.ToString().c_str());
      router.Stop();
      shards.Stop();
      return 1;
    }
    std::printf("metrics on http://127.0.0.1:%u/metrics\n",
                metrics_http->port());
    std::fflush(stdout);
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  sigset_t empty;
  sigemptyset(&empty);
  while (!g_stop) sigsuspend(&empty);

  std::fprintf(stderr, "shutting down\n");
  int rc = 0;
  const std::string trace_path = cl->GetString("trace-out");
  if (tracing && !trace_path.empty()) {
    // Pull the merged fleet trace through the router's own wire op
    // (router section + one per live shard) while everything is still
    // up, then assemble one Perfetto JSON.
    OptClient self;
    Status pull_status = self.ConnectTcp("127.0.0.1", router.bound_port());
    if (pull_status.ok()) {
      auto pulled = self.TracePull(/*drain=*/true);
      pull_status = pulled.status();
      if (pulled.ok()) {
        std::ofstream out(trace_path, std::ios::trunc);
        if (out) {
          out << AssembleTrace(pulled->processes);
          std::fprintf(stderr, "fleet trace written to %s (%zu processes)\n",
                       trace_path.c_str(), pulled->processes.size());
        } else {
          pull_status = Status::IOError("cannot open " + trace_path);
        }
      }
    }
    if (!pull_status.ok()) {
      std::fprintf(stderr, "fleet trace pull failed: %s\n",
                   pull_status.ToString().c_str());
      rc = 1;
    }
  }
  if (metrics_http) metrics_http->Stop();
  if (window) window->Stop();
  router.Stop();
  shards.Stop();
  if (tracing) StopTracing();
  return rc;
}
