// Converts a whitespace text edge list into an OPT GraphStore through
// the fully out-of-core pipeline (external sort + streaming store
// writer): memory use is O(|V|), never O(|E|). Applies the Schank–
// Wagner degree-ordering heuristic by default.
//
//   graph_convert --input edges.txt --output /path/base
//                 [--page_size 4096] [--no_degree_order]
//                 [--memory_mb 64] [--temp_dir /tmp]
#include <cstdio>

#include "storage/env.h"
#include "storage/store_builder.h"
#include "util/cli.h"
#include "util/logging.h"

using namespace opt;

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok() || !cl->Has("input") || !cl->Has("output")) {
    std::fprintf(stderr,
                 "usage: %s --input edges.txt --output /path/base "
                 "[--page_size N] [--no_degree_order] [--memory_mb M] "
                 "[--temp_dir DIR]\n",
                 argv[0]);
    return 2;
  }
  StoreBuildOptions options;
  options.page_size =
      static_cast<uint32_t>(cl->GetInt("page_size", kDefaultPageSize));
  options.degree_order = !cl->GetBool("no_degree_order", false);
  options.memory_budget_bytes =
      static_cast<size_t>(cl->GetInt("memory_mb", 64)) << 20;
  options.temp_dir = cl->GetString("temp_dir", "/tmp");

  auto stats = BuildStoreFromEdgeList(Env::Default(),
                                      cl->GetString("input"),
                                      cl->GetString("output"), options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s.pages / .meta\n", cl->GetString("output").c_str());
  std::printf("  input lines:    %llu\n",
              static_cast<unsigned long long>(stats->input_edges));
  std::printf("  kept edges:     %llu (dropped %llu self-loops, %llu "
              "duplicates)\n",
              static_cast<unsigned long long>(stats->kept_edges),
              static_cast<unsigned long long>(stats->self_loops),
              static_cast<unsigned long long>(stats->duplicates));
  std::printf("  vertices:       %u\n", stats->num_vertices);
  std::printf("  sort runs:      %u\n", stats->sort_runs);
  return 0;
}
