// Runs any triangulation method in the repository against an on-disk
// GraphStore.
//
//   triangle_count --store /path/base [--method OPT|OPT_serial|MGT|
//       CC-Seq|CC-DS|GraphChi-Tri|ideal] [--buffer_percent 15]
//       [--threads N] [--list FILE]
//       [--kernel scalar|sse|avx2|bitmap|bitmap_scalar|auto]
//       [--hub_split off|auto|pNN|<degree>]
#include <cstdio>
#include <optional>
#include <string>

#include "core/iterator_model.h"
#include "graph/hub_bitmap.h"
#include "graph/intersect.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "harness/datasets.h"
#include "harness/methods.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/cli.h"
#include "util/logging.h"

using namespace opt;

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok() || !cl->Has("store")) {
    std::fprintf(stderr,
                 "usage: %s --store /path/base [--method NAME] "
                 "[--buffer_percent P] [--threads N] [--list FILE]\n",
                 argv[0]);
    return 2;
  }
  auto store = GraphStore::Open(Env::Default(), cl->GetString("store"));
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }

  const std::string method_name = cl->GetString("method", "OPT");
  const std::string list_path = cl->GetString("list", "");

  std::optional<IntersectKernel> kernel;
  if (cl->Has("kernel")) {
    auto choice = cl->GetChoice(
        "kernel", {"scalar", "sse", "avx2", "bitmap", "bitmap_scalar", "auto"},
        "auto");
    if (!choice.ok()) {
      std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
      return 2;
    }
    kernel = *ParseIntersectKernel(*choice);
    if (Status s = SetIntersectKernel(*kernel); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }
  std::optional<HubSplitSpec> hub_split;
  if (cl->Has("hub_split")) {
    auto split = HubSplitSpec::Parse(cl->GetString("hub_split", "auto"));
    if (!split.ok()) {
      std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
      return 2;
    }
    hub_split = *split;
    SetDefaultHubSplit(*split);
  }

  MethodConfig config;
  config.kernel = kernel;
  config.hub_split = hub_split;
  config.memory_pages = PagesForBufferPercent(
      **store, cl->GetDouble("buffer_percent", 15.0));
  config.num_threads = static_cast<uint32_t>(cl->GetInt("threads", 2));
  config.temp_dir = "/tmp";

  if (!list_path.empty()) {
    // Listing mode runs OPT directly with a ListingSink.
    OptOptions options;
    options.m_in = std::max(config.memory_pages / 2,
                            (*store)->MaxRecordPages());
    options.m_ex = std::max(1u, config.memory_pages / 2);
    options.num_threads = config.num_threads;
    options.kernel = kernel;
    options.hub_split = hub_split;
    EdgeIteratorModel model;
    OptRunner runner(store->get(), &model, options);
    ListingSink listing(Env::Default(), list_path);
    CountingSink counter;
    TeeSink sink({&counter, &listing});
    if (Status s = runner.Run(&sink, nullptr); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("triangles: %llu  (listing: %s, %llu bytes, nested "
                "representation)\n",
                static_cast<unsigned long long>(counter.count()),
                list_path.c_str(),
                static_cast<unsigned long long>(listing.bytes_written()));
    return 0;
  }

  Method method = Method::kOpt;
  for (Method candidate :
       {Method::kOpt, Method::kOptSerial, Method::kOptVertexIter,
        Method::kMgt, Method::kCcSeq, Method::kCcDs, Method::kGraphChiTri,
        Method::kIdeal}) {
    if (method_name == MethodName(candidate)) method = candidate;
  }
  auto result = RunMethod(method, store->get(), Env::Default(), config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("method:    %s\n", result->method.c_str());
  std::printf("kernel:    %s (%llu intersect calls, %llu elements)\n",
              IntersectKernelName(result->kernel_used),
              static_cast<unsigned long long>(result->intersect.TotalCalls()),
              static_cast<unsigned long long>(
                  result->intersect.TotalElements()));
  if (result->hub_bitmaps_built > 0) {
    std::printf("hub split: degree >= %u (%llu bitmaps built)\n",
                result->hub_degree_threshold,
                static_cast<unsigned long long>(result->hub_bitmaps_built));
  }
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(result->triangles));
  std::printf("elapsed:   %.3f s\n", result->seconds);
  std::printf("pages:     %llu read, %llu written, %u iterations\n",
              static_cast<unsigned long long>(result->pages_read),
              static_cast<unsigned long long>(result->pages_written),
              result->iterations);
  return 0;
}
