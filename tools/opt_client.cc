// Command-line client for opt_server.
//
//   opt_client (--port N [--host 127.0.0.1] | --unix /path.sock) \
//       --op count|list|stats|load [--graph NAME] \
//       [--pages N] [--threads N] [--deadline_ms N] \
//       [--path /graph/base]     (load: store base path) \
//       [--out FILE]             (list: write triangles as text)
#include <cstdio>
#include <string>

#include "service/client.h"
#include "util/cli.h"
#include "util/logging.h"

using namespace opt;

namespace {

/// Pretty-prints the structured STATS reply: the legacy text section,
/// then latency histogram quantiles, then the metrics-registry counters
/// with a derived buffer-pool hit rate. Old servers only send the text.
void PrintStats(const StatsResult& stats) {
  std::fputs(stats.text.c_str(), stdout);
  if (!stats.histograms.empty()) {
    std::printf("\n%-24s %10s %10s %10s %10s %10s %10s %10s\n", "histogram",
                "count", "min", "max", "mean", "p50", "p95", "p99");
    for (const StatsHistogram& h : stats.histograms) {
      std::printf("%-24s %10llu %10llu %10llu %10.1f %10.1f %10.1f %10.1f\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max), h.mean, h.p50,
                  h.p95, h.p99);
    }
  }
  if (!stats.counters.empty()) {
    std::printf("\n%-32s %12s\n", "counter", "value");
    uint64_t fetch_lookups = 0;
    uint64_t fetch_hits = 0;
    for (const StatsCounter& c : stats.counters) {
      std::printf("%-32s %12llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
      if (c.name == "pool.fetch.lookups") fetch_lookups = c.value;
      if (c.name == "pool.fetch.hits") fetch_hits = c.value;
    }
    if (fetch_lookups > 0) {
      std::printf("\npool hit rate: %.1f%% (%llu/%llu fetches)\n",
                  100.0 * static_cast<double>(fetch_hits) /
                      static_cast<double>(fetch_lookups),
                  static_cast<unsigned long long>(fetch_hits),
                  static_cast<unsigned long long>(fetch_lookups));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  const bool use_unix = cl->Has("unix");
  if (!use_unix && !cl->Has("port")) {
    std::fprintf(stderr,
                 "usage: %s (--port N | --unix /path.sock) --op "
                 "count|list|stats|load [--graph NAME] [--path BASE]\n",
                 argv[0]);
    return 2;
  }
  auto op = cl->GetChoice("op", {"count", "list", "stats", "load"}, "count");
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
    return 2;
  }

  OptClient client;
  Status status =
      use_unix
          ? client.ConnectUnix(cl->GetString("unix"))
          : client.ConnectTcp(cl->GetString("host", "127.0.0.1"),
                              static_cast<uint16_t>(cl->GetInt("port", 0)));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  ClientQueryOptions options;
  options.memory_pages = static_cast<uint32_t>(cl->GetInt("pages", 0));
  options.num_threads = static_cast<uint32_t>(cl->GetInt("threads", 0));
  options.deadline_millis =
      static_cast<uint64_t>(cl->GetInt("deadline_ms", 0));
  const std::string graph = cl->GetString("graph");

  if (*op == "count") {
    auto result = client.Count(graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    static const char* kSources[] = {"executed", "coalesced", "cache"};
    const char* source =
        result->source < 3 ? kSources[result->source] : "?";
    std::printf("triangles: %llu\n",
                static_cast<unsigned long long>(result->triangles));
    std::printf("seconds: %.6f  source: %s  iterations: %u\n",
                result->seconds, source, result->iterations);
    std::printf("pool_hits: %llu  pages_read: %llu\n",
                static_cast<unsigned long long>(result->pool_hits),
                static_cast<unsigned long long>(result->pages_read));
    return 0;
  }

  if (*op == "list") {
    FILE* out = stdout;
    const std::string out_path = cl->GetString("out");
    if (!out_path.empty()) {
      out = std::fopen(out_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
    }
    auto result = client.List(
        graph,
        [out](const ListBatch& batch) {
          for (const ListBatch::Record& record : batch.records) {
            for (VertexId w : record.ws) {
              std::fprintf(out, "%u %u %u\n", record.u, record.v, w);
            }
          }
        },
        options);
    if (out != stdout) std::fclose(out);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "triangles: %llu  seconds: %.6f\n",
                 static_cast<unsigned long long>(result->triangles),
                 result->seconds);
    return 0;
  }

  if (*op == "stats") {
    auto stats = client.StatsFull();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    PrintStats(*stats);
    return 0;
  }

  // load
  if (graph.empty() || !cl->Has("path")) {
    std::fprintf(stderr, "--op load needs --graph NAME --path BASE\n");
    return 2;
  }
  status = client.LoadGraph(graph, cl->GetString("path"));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %s\n", graph.c_str());
  return 0;
}
