// Command-line client for opt_server.
//
// Works against a single opt_server or an opt_router: router replies
// carry a `partial_shards` mask, printed after the result (exit code 3
// on a partial answer), and `--op shard-stats` asks a router for its
// per-shard breakdown.
//
//   opt_client (--port N [--host 127.0.0.1] | --unix /path.sock) \
//       --op count|list|stats|load|profile|add-edges|remove-edges| \
//            subscribe|shard-stats|trace \
//       [--graph NAME] \
//       [--pages N] [--threads N] [--deadline_ms N] \
//       [--path /graph/base]     (load: store base path) \
//       [--out FILE]             (list: triangles as text;
//                                 trace: Perfetto JSON, default
//                                 trace.json) \
//       [--edges "u-v,u-v,..."]  (add-edges / remove-edges) \
//       [--after_epoch N] [--timeout_ms N]  (subscribe long-poll)
//
// --op trace runs one traced COUNT (fresh trace id, printed), pulls the
// span rings from the server — against a router that means the router's
// section plus every shard's — and writes the assembled
// Perfetto-openable JSON to --out.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/overlap_profiler.h"
#include "service/client.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/trace.h"

using namespace opt;

namespace {

/// Pretty-prints the structured STATS reply: the legacy text section,
/// then latency histogram quantiles and the metrics-registry counters as
/// aligned tables, then a summary block with the derived pool hit rate
/// and the two health counters operators grep for first. Old servers
/// only send the text.
void PrintStats(const StatsResult& stats) {
  std::fputs(stats.text.c_str(), stdout);
  if (!stats.histograms.empty()) {
    TablePrinter table({"histogram", "count", "min", "max", "mean", "p50",
                        "p95", "p99"});
    for (const StatsHistogram& h : stats.histograms) {
      table.AddRow({h.name, TablePrinter::Fmt(h.count),
                    TablePrinter::Fmt(h.min), TablePrinter::Fmt(h.max),
                    TablePrinter::Fmt(h.mean, 1), TablePrinter::Fmt(h.p50, 1),
                    TablePrinter::Fmt(h.p95, 1),
                    TablePrinter::Fmt(h.p99, 1)});
    }
    std::printf("\n");
    table.Print();
  }
  uint64_t fetch_lookups = 0;
  uint64_t fetch_hits = 0;
  uint64_t io_giveups = 0;
  uint64_t bitmap_calls = 0, bitmap_elements = 0;
  uint64_t merge_calls = 0, merge_elements = 0;
  uint64_t hub_bitmaps_built = 0;
  uint64_t perf_cycles = 0, perf_instructions = 0, perf_llc_misses = 0;
  uint64_t perf_task_clock_ns = 0;
  if (!stats.counters.empty()) {
    TablePrinter table({"counter", "value"});
    for (const StatsCounter& c : stats.counters) {
      table.AddRow({c.name, TablePrinter::Fmt(c.value)});
      if (c.name == "pool.fetch.lookups") fetch_lookups = c.value;
      if (c.name == "pool.fetch.hits") fetch_hits = c.value;
      if (c.name == "io.giveups") io_giveups = c.value;
      // The bitmap hybrid's two kernels vs the merge family (scalar /
      // sse / avx2) — the split behind the hub-routing speedup.
      if (c.name == "opt.intersect.bitmap.calls" ||
          c.name == "opt.intersect.bitmap_scalar.calls") {
        bitmap_calls += c.value;
      }
      if (c.name == "opt.intersect.bitmap.elements" ||
          c.name == "opt.intersect.bitmap_scalar.elements") {
        bitmap_elements += c.value;
      }
      if (c.name == "opt.intersect.scalar.calls" ||
          c.name == "opt.intersect.sse.calls" ||
          c.name == "opt.intersect.avx2.calls") {
        merge_calls += c.value;
      }
      if (c.name == "opt.intersect.scalar.elements" ||
          c.name == "opt.intersect.sse.elements" ||
          c.name == "opt.intersect.avx2.elements") {
        merge_elements += c.value;
      }
      if (c.name == "opt.hub.bitmaps_built") hub_bitmaps_built = c.value;
      if (c.name == "opt.perf.cycles") perf_cycles = c.value;
      if (c.name == "opt.perf.instructions") perf_instructions = c.value;
      if (c.name == "opt.perf.llc_misses") perf_llc_misses = c.value;
      if (c.name == "opt.perf.task_clock_ns") perf_task_clock_ns = c.value;
    }
    std::printf("\n");
    table.Print();
  }
  // Gauge-valued lines only travel in the text section; pull the hub
  // levels and the perf backend name out of it.
  auto text_value = [&stats](const std::string& key) -> std::string {
    const std::string needle = key + "=";
    size_t pos = stats.text.find(needle);
    if (pos != std::string::npos && pos > 0 &&
        stats.text[pos - 1] != '\n') {
      pos = stats.text.find("\n" + needle);
      if (pos != std::string::npos) ++pos;
    }
    if (pos == std::string::npos) return "";
    const size_t start = pos + needle.size();
    const size_t end = stats.text.find('\n', start);
    return stats.text.substr(start, end == std::string::npos
                                        ? std::string::npos
                                        : end - start);
  };
  const std::string hub_peak_bytes = text_value("opt.hub.bitmap_peak_bytes");
  const std::string hub_threshold = text_value("opt.hub.degree_threshold");
  const std::string perf_backend = text_value("perf.backend");
  if (bitmap_calls > 0 || hub_bitmaps_built > 0 || !hub_peak_bytes.empty()) {
    TablePrinter table({"hub/bitmap", "value"});
    table.AddRow({"bitmap kernel calls", TablePrinter::Fmt(bitmap_calls)});
    table.AddRow(
        {"bitmap kernel elements", TablePrinter::Fmt(bitmap_elements)});
    table.AddRow({"merge kernel calls", TablePrinter::Fmt(merge_calls)});
    table.AddRow(
        {"merge kernel elements", TablePrinter::Fmt(merge_elements)});
    table.AddRow(
        {"hub bitmaps built", TablePrinter::Fmt(hub_bitmaps_built)});
    table.AddRow({"hub bitmap peak bytes",
                  hub_peak_bytes.empty() ? "0" : hub_peak_bytes});
    table.AddRow({"hub degree threshold",
                  hub_threshold.empty() ? "-" : hub_threshold});
    std::printf("\n");
    table.Print();
  }
  // Summary block: pool efficiency plus the two "is anything wrong"
  // numbers (degraded queries, I/O retry give-ups).
  uint64_t degraded = 0;
  const std::string key = "scheduler.degraded=";
  if (const size_t pos = stats.text.find(key); pos != std::string::npos) {
    degraded = std::strtoull(stats.text.c_str() + pos + key.size(),
                             nullptr, 10);
  }
  std::printf("\nsummary:\n");
  if (fetch_lookups > 0) {
    std::printf("  pool hit rate: %.1f%% (%llu/%llu fetches)\n",
                100.0 * static_cast<double>(fetch_hits) /
                    static_cast<double>(fetch_lookups),
                static_cast<unsigned long long>(fetch_hits),
                static_cast<unsigned long long>(fetch_lookups));
  }
  if (!perf_backend.empty()) {
    std::printf("  perf backend: %s", perf_backend.c_str());
    if (perf_task_clock_ns > 0) {
      std::printf(" (task clock %.1f ms",
                  static_cast<double>(perf_task_clock_ns) * 1e-6);
      if (perf_cycles > 0) {
        std::printf(", ipc %.2f, llc misses %llu",
                    static_cast<double>(perf_instructions) /
                        static_cast<double>(perf_cycles),
                    static_cast<unsigned long long>(perf_llc_misses));
      }
      std::printf(")");
    }
    std::printf("\n");
  }
  std::printf("  scheduler.degraded: %llu\n",
              static_cast<unsigned long long>(degraded));
  std::printf("  io.giveups: %llu\n",
              static_cast<unsigned long long>(io_giveups));
}

/// PROFILE reply: overlap fractions, per-role sample shares, and the
/// cost-model fit, in the shape DESIGN.md §9 documents.
void PrintProfile(const ProfileResult& p) {
  std::printf("triangles: %llu\n",
              static_cast<unsigned long long>(p.triangles));
  std::printf("seconds: %.6f  iterations: %u\n", p.seconds, p.iterations);
  std::printf("\noverlap (sampled every %llu us, %llu samples, "
              "%llu stalled):\n",
              static_cast<unsigned long long>(p.period_micros),
              static_cast<unsigned long long>(p.samples),
              static_cast<unsigned long long>(p.stalled_samples));
  std::printf("  micro (CPU busy while reads in flight): %.1f%%\n",
              100.0 * p.micro_overlap);
  std::printf("  macro (internal and external together): %.1f%%\n",
              100.0 * p.macro_overlap);
  std::printf("  morph events: %llu\n",
              static_cast<unsigned long long>(p.morph_events));
  TablePrinter roles({"role", "samples", "share"});
  for (size_t i = 0; i < p.role_samples.size() && i < kNumThreadRoles;
       ++i) {
    const double share =
        p.samples == 0 ? 0.0
                       : static_cast<double>(p.role_samples[i]) /
                             static_cast<double>(p.samples);
    roles.AddRow({ThreadRoleName(static_cast<ThreadRole>(i)),
                  TablePrinter::Fmt(p.role_samples[i]),
                  TablePrinter::Fmt(100.0 * share, 1) + "%"});
  }
  roles.Print();
  std::printf("\ncost model (Cost(ideal) + c*(dEx_io - dIn_io)):\n");
  std::printf("  c (s/page): %.6g  dIn: %llu  dEx: %llu\n",
              p.cost_c_seconds_per_page,
              static_cast<unsigned long long>(p.delta_in_pages),
              static_cast<unsigned long long>(p.delta_ex_pages));
  std::printf("  ideal: %.6fs  predicted: %.6fs  measured: %.6fs\n",
              p.cost_ideal_seconds, p.cost_predicted_seconds,
              p.cost_measured_seconds);
  std::printf("  residual: %+.6fs (%.1f%% of measured)\n",
              p.cost_residual_seconds,
              p.cost_measured_seconds > 0
                  ? 100.0 * p.cost_residual_seconds / p.cost_measured_seconds
                  : 0.0);
}

/// Parses "u-v,u-v,..." (also accepts "u:v"). Endpoint order is free;
/// the server canonicalizes and validates.
Status ParseEdgeList(const std::string& text,
                     std::vector<std::pair<VertexId, VertexId>>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    size_t dash = item.find('-');
    if (dash == std::string::npos) dash = item.find(':');
    char* rest = nullptr;
    if (dash == std::string::npos || dash == 0 ||
        dash + 1 >= item.size()) {
      return Status::InvalidArgument("bad edge '" + item +
                                     "' (expected u-v)");
    }
    const unsigned long long u =
        std::strtoull(item.c_str(), &rest, 10);
    if (rest != item.c_str() + dash) {
      return Status::InvalidArgument("bad edge '" + item + "'");
    }
    const unsigned long long v =
        std::strtoull(item.c_str() + dash + 1, &rest, 10);
    if (rest != item.c_str() + item.size()) {
      return Status::InvalidArgument("bad edge '" + item + "'");
    }
    out->emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    pos = end + 1;
  }
  if (out->empty()) {
    return Status::InvalidArgument("--edges is empty");
  }
  return Status::OK();
}

void PrintMutateResult(const MutateResult& m) {
  std::printf("epoch: %llu  edges_applied: %llu\n",
              static_cast<unsigned long long>(m.epoch),
              static_cast<unsigned long long>(m.edges_applied));
  std::printf("batch_triangle_delta: %+lld  total_triangle_delta: %+lld\n",
              static_cast<long long>(m.batch_triangle_delta),
              static_cast<long long>(m.total_triangle_delta));
  std::printf("seconds: %.6f\n", m.seconds);
  if (m.approx_valid) {
    std::printf("approx_triangles (streamed edges): %.1f\n",
                m.approx_triangles);
  }
}

/// Renders a router CountResult-style partial mask: which shards are
/// missing from the answer. Prints nothing against an unsharded server
/// (num_shards == 0).
void PrintPartialShards(uint64_t mask, uint32_t num_shards) {
  if (num_shards == 0) return;
  if (mask == 0) {
    std::printf("shards: %u/%u answered (complete)\n", num_shards,
                num_shards);
    return;
  }
  std::string failed;
  uint32_t failures = 0;
  for (uint32_t i = 0; i < num_shards && i < 64; ++i) {
    if (mask & (1ull << i)) {
      if (!failed.empty()) failed += ",";
      failed += std::to_string(i);
      ++failures;
    }
  }
  std::printf("shards: %u/%u answered (PARTIAL — missing shard%s %s)\n",
              num_shards - failures, num_shards, failures == 1 ? "" : "s",
              failed.c_str());
}

/// SHARD_STATS table: the router's per-shard health/latency breakdown.
void PrintShardStats(const ShardStatsResult& stats) {
  std::printf("graph: %s  shards: %zu\n", stats.graph.c_str(),
              stats.shards.size());
  TablePrinter table({"shard", "address", "healthy", "range", "epoch",
                      "restarts", "reqs", "fails", "retries", "ghosts",
                      "p50us", "p95us", "p99us"});
  for (const ShardStatsEntry& entry : stats.shards) {
    table.AddRow({TablePrinter::Fmt(uint64_t{entry.id}), entry.address,
                  entry.healthy ? "yes" : "NO",
                  "[" + TablePrinter::Fmt(uint64_t{entry.range_lo}) + "," +
                      TablePrinter::Fmt(uint64_t{entry.range_hi}) + ")",
                  TablePrinter::Fmt(entry.epoch),
                  TablePrinter::Fmt(entry.restarts),
                  TablePrinter::Fmt(entry.requests),
                  TablePrinter::Fmt(entry.failures),
                  TablePrinter::Fmt(entry.retries),
                  TablePrinter::Fmt(entry.ghost_triangles),
                  TablePrinter::Fmt(entry.latency_p50_micros, 1),
                  TablePrinter::Fmt(entry.latency_p95_micros, 1),
                  TablePrinter::Fmt(entry.latency_p99_micros, 1)});
  }
  table.Print();
}

/// Degraded queries ship their flight-recorder tail with the error;
/// print it so the failure explains itself at the terminal.
void PrintErrorWithEvents(const Status& status, const OptClient& client) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  if (client.last_error_trace_id() != 0) {
    std::fprintf(stderr, "trace: %016llx (grep server logs for "
                 "[trace=...] lines)\n",
                 static_cast<unsigned long long>(
                     client.last_error_trace_id()));
  }
  const std::vector<FlightEvent>& events = client.last_error_events();
  if (!events.empty()) {
    std::fprintf(stderr, "flight recorder (last %zu events):\n%s",
                 events.size(),
                 FlightRecorder::Render(events,
                                        client.last_error_trace_id())
                     .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  const bool use_unix = cl->Has("unix");
  if (!use_unix && !cl->Has("port")) {
    std::fprintf(stderr,
                 "usage: %s (--port N | --unix /path.sock) --op "
                 "count|list|stats|load|profile [--graph NAME] "
                 "[--path BASE]\n",
                 argv[0]);
    return 2;
  }
  auto op = cl->GetChoice(
      "op",
      {"count", "list", "stats", "load", "profile", "add-edges",
       "remove-edges", "subscribe", "shard-stats", "trace"},
      "count");
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
    return 2;
  }

  OptClient client;
  Status status =
      use_unix
          ? client.ConnectUnix(cl->GetString("unix"))
          : client.ConnectTcp(cl->GetString("host", "127.0.0.1"),
                              static_cast<uint16_t>(cl->GetInt("port", 0)));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  ClientQueryOptions options;
  options.memory_pages = static_cast<uint32_t>(cl->GetInt("pages", 0));
  options.num_threads = static_cast<uint32_t>(cl->GetInt("threads", 0));
  options.deadline_millis =
      static_cast<uint64_t>(cl->GetInt("deadline_ms", 0));
  const std::string graph = cl->GetString("graph");

  if (*op == "count") {
    auto result = client.Count(graph, options);
    if (!result.ok()) {
      PrintErrorWithEvents(result.status(), client);
      return 1;
    }
    static const char* kSources[] = {"executed", "coalesced", "cache"};
    const char* source =
        result->source < 3 ? kSources[result->source] : "?";
    std::printf("triangles: %llu\n",
                static_cast<unsigned long long>(result->triangles));
    std::printf("seconds: %.6f  source: %s  iterations: %u\n",
                result->seconds, source, result->iterations);
    std::printf("pool_hits: %llu  pages_read: %llu\n",
                static_cast<unsigned long long>(result->pool_hits),
                static_cast<unsigned long long>(result->pages_read));
    PrintPartialShards(result->partial_shards, result->num_shards);
    return result->partial_shards != 0 ? 3 : 0;
  }

  if (*op == "profile") {
    auto result = client.Profile(graph, options);
    if (!result.ok()) {
      PrintErrorWithEvents(result.status(), client);
      return 1;
    }
    PrintProfile(*result);
    return 0;
  }

  if (*op == "list") {
    FILE* out = stdout;
    const std::string out_path = cl->GetString("out");
    if (!out_path.empty()) {
      out = std::fopen(out_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
    }
    auto result = client.List(
        graph,
        [out](const ListBatch& batch) {
          for (const ListBatch::Record& record : batch.records) {
            for (VertexId w : record.ws) {
              std::fprintf(out, "%u %u %u\n", record.u, record.v, w);
            }
          }
        },
        options);
    if (out != stdout) std::fclose(out);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "triangles: %llu  seconds: %.6f\n",
                 static_cast<unsigned long long>(result->triangles),
                 result->seconds);
    PrintPartialShards(result->partial_shards, result->num_shards);
    return result->partial_shards != 0 ? 3 : 0;
  }

  if (*op == "add-edges" || *op == "remove-edges") {
    std::vector<std::pair<VertexId, VertexId>> edges;
    status = ParseEdgeList(cl->GetString("edges"), &edges);
    if (!status.ok() || graph.empty()) {
      std::fprintf(stderr,
                   "--op %s needs --graph NAME --edges \"u-v,u-v\"%s%s\n",
                   op->c_str(), status.ok() ? "" : ": ",
                   status.ok() ? "" : status.ToString().c_str());
      return 2;
    }
    auto result = *op == "add-edges" ? client.AddEdges(graph, edges)
                                     : client.RemoveEdges(graph, edges);
    if (!result.ok()) {
      PrintErrorWithEvents(result.status(), client);
      return 1;
    }
    PrintMutateResult(*result);
    PrintPartialShards(result->partial_shards, result->num_shards);
    return result->partial_shards != 0 ? 3 : 0;
  }

  if (*op == "subscribe") {
    const uint64_t after_epoch =
        static_cast<uint64_t>(cl->GetInt("after_epoch", 0));
    const uint64_t timeout_ms =
        static_cast<uint64_t>(cl->GetInt("timeout_ms", 30000));
    auto result = client.SubscribeCount(graph, after_epoch, timeout_ms);
    if (!result.ok()) {
      PrintErrorWithEvents(result.status(), client);
      return 1;
    }
    std::printf("epoch: %llu%s\n",
                static_cast<unsigned long long>(result->epoch),
                result->timed_out ? "  (timed out)" : "");
    if (result->exact_known) {
      std::printf("triangles: %llu\n",
                  static_cast<unsigned long long>(result->triangles));
    } else {
      std::printf("triangles: unknown (no COUNT has run yet)\n");
    }
    std::printf("delta_triangles: %+lld  edges_added: %llu  "
                "edges_removed: %llu\n",
                static_cast<long long>(result->delta_triangles),
                static_cast<unsigned long long>(result->edges_added),
                static_cast<unsigned long long>(result->edges_removed));
    if (result->approx_valid) {
      std::printf("approx_triangles (streamed edges): %.1f\n",
                  result->approx_triangles);
    }
    PrintPartialShards(result->partial_shards, result->num_shards);
    return result->partial_shards != 0 ? 3 : 0;
  }

  if (*op == "trace") {
    // One traced COUNT end to end: mint a fresh trace id, let the client
    // attach it to the request, then drain every process's span ring
    // through the server (a router adds one section per shard) and
    // assemble the Perfetto JSON.
    const uint64_t trace_id = NewTraceId();
    {
      TraceContextScope scope({trace_id, 0});
      auto result = client.Count(graph, options);
      if (!result.ok()) {
        PrintErrorWithEvents(result.status(), client);
        return 1;
      }
      std::printf("triangles: %llu\n",
                  static_cast<unsigned long long>(result->triangles));
      PrintPartialShards(result->partial_shards, result->num_shards);
    }
    auto pulled = client.TracePull(/*drain=*/true);
    if (!pulled.ok()) {
      std::fprintf(stderr, "trace pull failed: %s\n",
                   pulled.status().ToString().c_str());
      return 1;
    }
    size_t matching = 0;
    for (const ProcessTrace& part : pulled->processes) {
      for (const TraceEvent& event : part.events) {
        if (event.trace_id == trace_id) ++matching;
      }
    }
    const std::string out_path = cl->GetString("out", "trace.json");
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << AssembleTrace(pulled->processes);
    std::printf("trace: %016llx\n",
                static_cast<unsigned long long>(trace_id));
    std::printf("%s: %zu process(es), %zu span(s) in this trace — open "
                "in https://ui.perfetto.dev\n",
                out_path.c_str(), pulled->processes.size(), matching);
    return pulled->processes.empty() ? 1 : 0;
  }

  if (*op == "shard-stats") {
    auto result = client.ShardStats();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    PrintShardStats(*result);
    return 0;
  }

  if (*op == "stats") {
    auto stats = client.StatsFull();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    PrintStats(*stats);
    return 0;
  }

  // load
  if (graph.empty() || !cl->Has("path")) {
    std::fprintf(stderr, "--op load needs --graph NAME --path BASE\n");
    return 2;
  }
  status = client.LoadGraph(graph, cl->GetString("path"));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %s\n", graph.c_str());
  return 0;
}
