// Command-line client for opt_server.
//
//   opt_client (--port N [--host 127.0.0.1] | --unix /path.sock) \
//       --op count|list|stats|load [--graph NAME] \
//       [--pages N] [--threads N] [--deadline_ms N] \
//       [--path /graph/base]     (load: store base path) \
//       [--out FILE]             (list: write triangles as text)
#include <cstdio>
#include <string>

#include "service/client.h"
#include "util/cli.h"

using namespace opt;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  const bool use_unix = cl->Has("unix");
  if (!use_unix && !cl->Has("port")) {
    std::fprintf(stderr,
                 "usage: %s (--port N | --unix /path.sock) --op "
                 "count|list|stats|load [--graph NAME] [--path BASE]\n",
                 argv[0]);
    return 2;
  }
  auto op = cl->GetChoice("op", {"count", "list", "stats", "load"}, "count");
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
    return 2;
  }

  OptClient client;
  Status status =
      use_unix
          ? client.ConnectUnix(cl->GetString("unix"))
          : client.ConnectTcp(cl->GetString("host", "127.0.0.1"),
                              static_cast<uint16_t>(cl->GetInt("port", 0)));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  ClientQueryOptions options;
  options.memory_pages = static_cast<uint32_t>(cl->GetInt("pages", 0));
  options.num_threads = static_cast<uint32_t>(cl->GetInt("threads", 0));
  options.deadline_millis =
      static_cast<uint64_t>(cl->GetInt("deadline_ms", 0));
  const std::string graph = cl->GetString("graph");

  if (*op == "count") {
    auto result = client.Count(graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    static const char* kSources[] = {"executed", "coalesced", "cache"};
    const char* source =
        result->source < 3 ? kSources[result->source] : "?";
    std::printf("triangles: %llu\n",
                static_cast<unsigned long long>(result->triangles));
    std::printf("seconds: %.6f  source: %s  iterations: %u\n",
                result->seconds, source, result->iterations);
    std::printf("pool_hits: %llu  pages_read: %llu\n",
                static_cast<unsigned long long>(result->pool_hits),
                static_cast<unsigned long long>(result->pages_read));
    return 0;
  }

  if (*op == "list") {
    FILE* out = stdout;
    const std::string out_path = cl->GetString("out");
    if (!out_path.empty()) {
      out = std::fopen(out_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
    }
    auto result = client.List(
        graph,
        [out](const ListBatch& batch) {
          for (const ListBatch::Record& record : batch.records) {
            for (VertexId w : record.ws) {
              std::fprintf(out, "%u %u %u\n", record.u, record.v, w);
            }
          }
        },
        options);
    if (out != stdout) std::fclose(out);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "triangles: %llu  seconds: %.6f\n",
                 static_cast<unsigned long long>(result->triangles),
                 result->seconds);
    return 0;
  }

  if (*op == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::fputs(stats->c_str(), stdout);
    return 0;
  }

  // load
  if (graph.empty() || !cl->Has("path")) {
    std::fprintf(stderr, "--op load needs --graph NAME --path BASE\n");
    return 2;
  }
  status = client.LoadGraph(graph, cl->GetString("path"));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %s\n", graph.c_str());
  return 0;
}
