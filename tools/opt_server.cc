// Triangle query server. Pins one or more GraphStores behind a shared
// buffer pool and serves COUNT/LIST/STATS/LOADGRAPH plus the streaming
// delta ops ADD_EDGES/REMOVE_EDGES/SUBSCRIBE_COUNT over TCP or a
// Unix-domain socket. --no_mutations makes the server read-only;
// --approx_reservoir N arms the per-graph TRIÈST sampling counter with
// an N-edge reservoir (0 = exact-only, the default).
//
//   opt_server [--port N | --unix /path.sock]
//       [--graph name=/path/base ...] [--workers N] [--max_queue N]
//       [--pool_pages N] [--default_pages N] [--default_threads N]
//       [--no_cache] [--no_load_graph] [--no_mutations]
//       [--approx_reservoir N] [--slow_query_ms N]
//       [--fault-plan SPEC]
//       [--metrics-dump-interval SECONDS] [--metrics-port N]
//       [--trace-out /path.json] [--no_trace]
//       [--profile-out /path.jsonl]
//
// --port 0 binds an ephemeral port (printed on stdout, for scripts).
// --fault-plan wraps the filesystem in a deterministic FaultInjectingEnv
// for reproducible chaos runs, e.g.
// --fault-plan "seed=42,read_error_p=0.02,transient=1,path_filter=.pages".
// --metrics-dump-interval logs the metrics registry every N seconds.
// --metrics-port serves the Prometheus exposition text on
// http://127.0.0.1:N/metrics (0 = ephemeral, printed on stdout):
// registry counters/gauges/histogram summaries, windowed per-second
// rates, and per-graph gauges labelled by (escaped) graph name.
// --profile-out appends one JSON line per PROFILE query (overlap
// fractions + cost-model fit) for offline analysis.
// Tracing is on by default into a bounded in-memory ring (16Ki events,
// oldest overwritten) so TRACE_PULL always has the recent window;
// --no_trace turns it off. --trace-out additionally writes the whole
// lifetime as Chrome trace_event JSON (open in Perfetto) at shutdown.
// Runs until SIGINT/SIGTERM. Honors OPT_LOG_LEVEL (debug|info|warn|error).
#include <signal.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics_http.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "storage/fault_env.h"
#include "service/server.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

using namespace opt;

namespace {

volatile sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

/// Background thread logging Metrics().ExposeText() every `interval`.
class MetricsDumper {
 public:
  explicit MetricsDumper(std::chrono::seconds interval) {
    thread_ = std::thread([this, interval] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!cv_.wait_for(lock, interval, [this] { return stopping_; })) {
        const std::string text = Metrics().ExposeText();
        OPT_LOG(Info) << "metrics dump:\n" << text;
      }
    });
  }
  ~MetricsDumper() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Registry, scheduler, server, and the serve loop. Runs in its own
/// frame so every worker/connection thread has been joined — and can no
/// longer emit trace events — by the time main() serializes the trace.
int RunServer(const CommandLine& cl) {
  Env* env = Env::Default();
  std::unique_ptr<FaultInjectingEnv> fault_env;
  if (cl.Has("fault-plan")) {
    auto plan = FaultPlan::Parse(cl.GetString("fault-plan"));
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --fault-plan: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    fault_env = std::make_unique<FaultInjectingEnv>(env, *plan);
    env = fault_env.get();
    std::fprintf(stderr, "fault injection armed: %s\n",
                 plan->ToString().c_str());
  }

  RegistryOptions registry_options;
  registry_options.min_pool_frames =
      static_cast<uint32_t>(cl.GetInt("pool_pages", 256));
  registry_options.approx_reservoir_edges =
      static_cast<uint64_t>(cl.GetInt("approx_reservoir", 0));
  GraphRegistry registry(env, registry_options);

  SchedulerOptions scheduler_options;
  scheduler_options.workers =
      static_cast<uint32_t>(cl.GetInt("workers", 4));
  scheduler_options.max_queue =
      static_cast<uint32_t>(cl.GetInt("max_queue", 64));
  scheduler_options.default_memory_pages =
      static_cast<uint32_t>(cl.GetInt("default_pages", 64));
  scheduler_options.default_threads =
      static_cast<uint32_t>(cl.GetInt("default_threads", 2));
  scheduler_options.enable_result_cache = !cl.GetBool("no_cache", false);
  scheduler_options.slow_query_millis =
      static_cast<uint64_t>(cl.GetInt("slow_query_ms", 0));
  QueryScheduler scheduler(&registry, scheduler_options);

  // --graph flags preload stores; more can arrive later via LOADGRAPH.
  // The CLI parser keeps the last value per flag, so multiple graphs on
  // one command line arrive as positionals of the form name=/path too.
  std::vector<std::string> graph_specs;
  if (cl.Has("graph")) graph_specs.push_back(cl.GetString("graph"));
  for (const std::string& positional : cl.positional()) {
    if (positional.find('=') != std::string::npos) {
      graph_specs.push_back(positional);
    }
  }
  for (const std::string& spec : graph_specs) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      std::fprintf(stderr, "bad --graph spec (want name=/path): %s\n",
                   spec.c_str());
      return 2;
    }
    const std::string name = spec.substr(0, eq);
    const std::string path = spec.substr(eq + 1);
    if (Status s = scheduler.LoadGraph(name, path); !s.ok()) {
      std::fprintf(stderr, "load %s: %s\n", name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded graph '%s' from %s\n", name.c_str(),
                 path.c_str());
  }

  OptServer server(&scheduler, !cl.GetBool("no_load_graph", false),
                   !cl.GetBool("no_mutations", false));
  if (cl.Has("profile-out")) {
    server.SetProfileOutput(cl.GetString("profile-out"));
  }
  Status status;
  if (cl.Has("unix")) {
    status = server.ListenUnix(cl.GetString("unix"));
  } else {
    status = server.ListenTcp(
        static_cast<uint16_t>(cl.GetInt("port", 0)));
  }
  if (status.ok()) status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (cl.Has("unix")) {
    std::printf("listening on %s\n", cl.GetString("unix").c_str());
  } else {
    std::printf("listening on 127.0.0.1:%u\n", server.bound_port());
  }
  std::fflush(stdout);

  std::unique_ptr<MetricsDumper> dumper;
  const int64_t dump_interval = cl.GetInt("metrics-dump-interval", 0);
  if (dump_interval > 0) {
    dumper = std::make_unique<MetricsDumper>(
        std::chrono::seconds(dump_interval));
  }

  // --metrics-port: Prometheus scrape endpoint. The window sampler turns
  // monotonic counters into per-second rates (qps, pages/s) over its
  // ring of snapshots; per-graph gauges carry the graph name as an
  // escaped label so names like "g.rmat-20" survive the exposition
  // grammar.
  std::unique_ptr<MetricsWindow> window;
  std::unique_ptr<MetricsHttpServer> metrics_http;
  if (cl.Has("metrics-port")) {
    window = std::make_unique<MetricsWindow>(&Metrics());
    window->Start(1000);
    MetricsWindow* window_ptr = window.get();
    GraphRegistry* registry_ptr = &registry;
    metrics_http = std::make_unique<MetricsHttpServer>(
        [window_ptr, registry_ptr] {
          std::string body = Metrics().ExposePrometheus();
          body += window_ptr->ExposePrometheus();
          std::ostringstream graphs;
          graphs << "# TYPE opt_graph_pages gauge\n"
                 << "# TYPE opt_graph_directed_edges gauge\n"
                 << "# TYPE opt_graph_epoch gauge\n";
          for (const GraphRegistry::GraphInfo& info :
               registry_ptr->List()) {
            const std::string label =
                "{graph=\"" + EscapeLabelValue(info.name) + "\"} ";
            graphs << "opt_graph_pages" << label << info.num_pages << '\n'
                   << "opt_graph_directed_edges" << label
                   << info.num_directed_edges << '\n'
                   << "opt_graph_epoch" << label << info.epoch << '\n';
          }
          return body + graphs.str();
        });
    const Status metrics_status = metrics_http->Start(
        static_cast<uint16_t>(cl.GetInt("metrics-port", 0)));
    if (!metrics_status.ok()) {
      std::fprintf(stderr, "metrics endpoint: %s\n",
                   metrics_status.ToString().c_str());
      return 1;
    }
    std::printf("metrics on http://127.0.0.1:%u/metrics\n",
                metrics_http->port());
    std::fflush(stdout);
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  sigset_t empty;
  sigemptyset(&empty);
  while (!g_stop) sigsuspend(&empty);

  std::fprintf(stderr, "shutting down\n");
  dumper.reset();
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  if (!cl->Has("port") && !cl->Has("unix")) {
    std::fprintf(stderr,
                 "usage: %s (--port N | --unix /path.sock) "
                 "[--graph name=/path/base ...] [--workers N] "
                 "[--metrics-dump-interval SEC] [--trace-out FILE]\n",
                 argv[0]);
    return 2;
  }

  const std::string trace_path = cl->GetString("trace-out");
  // Tracing defaults on so TRACE_PULL (and the router's fleet-trace
  // assembly) always has a recent window; the ring bounds memory. A full
  // lifetime dump (--trace-out) gets a deeper ring.
  const bool tracing = !cl->GetBool("no_trace", false);
  TraceRecorder trace_recorder(trace_path.empty() ? (1u << 14)
                                                  : (1u << 20));
  if (tracing) StartTracing(&trace_recorder);

  const int rc = RunServer(*cl);

  if (tracing) {
    // RunServer has joined every worker and connection thread, so no
    // span can still be open against the recorder.
    StopTracing();
  }
  if (tracing && !trace_path.empty()) {
    if (Status s = trace_recorder.WriteJson(trace_path); !s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   s.ToString().c_str());
      return rc != 0 ? rc : 1;
    }
    std::fprintf(stderr, "trace written to %s (%zu events, %llu dropped)\n",
                 trace_path.c_str(), trace_recorder.Events().size(),
                 static_cast<unsigned long long>(trace_recorder.dropped()));
  }
  return rc;
}
