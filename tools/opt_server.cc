// Triangle query server. Pins one or more GraphStores behind a shared
// buffer pool and serves COUNT/LIST/STATS/LOADGRAPH over TCP or a
// Unix-domain socket.
//
//   opt_server [--port N | --unix /path.sock]
//       [--graph name=/path/base ...] [--workers N] [--max_queue N]
//       [--pool_pages N] [--default_pages N] [--default_threads N]
//       [--no_cache] [--no_load_graph]
//
// --port 0 binds an ephemeral port (printed on stdout, for scripts).
// Runs until SIGINT/SIGTERM.
#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "service/server.h"
#include "util/cli.h"

using namespace opt;

namespace {

volatile sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  if (!cl->Has("port") && !cl->Has("unix")) {
    std::fprintf(stderr,
                 "usage: %s (--port N | --unix /path.sock) "
                 "[--graph name=/path/base ...] [--workers N]\n",
                 argv[0]);
    return 2;
  }

  RegistryOptions registry_options;
  registry_options.min_pool_frames =
      static_cast<uint32_t>(cl->GetInt("pool_pages", 256));
  GraphRegistry registry(Env::Default(), registry_options);

  SchedulerOptions scheduler_options;
  scheduler_options.workers =
      static_cast<uint32_t>(cl->GetInt("workers", 4));
  scheduler_options.max_queue =
      static_cast<uint32_t>(cl->GetInt("max_queue", 64));
  scheduler_options.default_memory_pages =
      static_cast<uint32_t>(cl->GetInt("default_pages", 64));
  scheduler_options.default_threads =
      static_cast<uint32_t>(cl->GetInt("default_threads", 2));
  scheduler_options.enable_result_cache = !cl->GetBool("no_cache", false);
  QueryScheduler scheduler(&registry, scheduler_options);

  // --graph flags preload stores; more can arrive later via LOADGRAPH.
  // The CLI parser keeps the last value per flag, so multiple graphs on
  // one command line arrive as positionals of the form name=/path too.
  std::vector<std::string> graph_specs;
  if (cl->Has("graph")) graph_specs.push_back(cl->GetString("graph"));
  for (const std::string& positional : cl->positional()) {
    if (positional.find('=') != std::string::npos) {
      graph_specs.push_back(positional);
    }
  }
  for (const std::string& spec : graph_specs) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      std::fprintf(stderr, "bad --graph spec (want name=/path): %s\n",
                   spec.c_str());
      return 2;
    }
    const std::string name = spec.substr(0, eq);
    const std::string path = spec.substr(eq + 1);
    if (Status s = scheduler.LoadGraph(name, path); !s.ok()) {
      std::fprintf(stderr, "load %s: %s\n", name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded graph '%s' from %s\n", name.c_str(),
                 path.c_str());
  }

  OptServer server(&scheduler, !cl->GetBool("no_load_graph", false));
  Status status;
  if (cl->Has("unix")) {
    status = server.ListenUnix(cl->GetString("unix"));
  } else {
    status = server.ListenTcp(
        static_cast<uint16_t>(cl->GetInt("port", 0)));
  }
  if (status.ok()) status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (cl->Has("unix")) {
    std::printf("listening on %s\n", cl->GetString("unix").c_str());
  } else {
    std::printf("listening on 127.0.0.1:%u\n", server.bound_port());
  }
  std::fflush(stdout);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  sigset_t empty;
  sigemptyset(&empty);
  while (!g_stop) sigsuspend(&empty);

  std::fprintf(stderr, "shutting down\n");
  server.Stop();
  return 0;
}
