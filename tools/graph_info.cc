// Prints structural information about an on-disk GraphStore, including
// the degree histogram.
//
//   graph_info --store /path/base [--histogram]
#include <cstdio>

#include "graph/stats.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "storage/record_scanner.h"
#include "util/cli.h"
#include "util/histogram.h"
#include "util/logging.h"

using namespace opt;

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok() || !cl->Has("store")) {
    std::fprintf(stderr, "usage: %s --store /path/base [--histogram]\n",
                 argv[0]);
    return 2;
  }
  auto store = GraphStore::Open(Env::Default(), cl->GetString("store"));
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("pages:          %u x %u bytes\n", (*store)->num_pages(),
              (*store)->page_size());
  std::printf("vertices:       %u\n", (*store)->num_vertices());
  std::printf("directed edges: %llu\n",
              static_cast<unsigned long long>(
                  (*store)->num_directed_edges()));
  std::printf("max record:     %u pages\n", (*store)->MaxRecordPages());

  Histogram degrees;
  uint64_t wedges = 0;
  Status s = ScanRecords(**store, 0, (*store)->num_pages() - 1,
                         [&](VertexId, std::span<const VertexId> n) {
                           degrees.Add(n.size());
                           const uint64_t d = n.size();
                           wedges += d * (d - 1) / 2;
                         });
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("avg degree:     %.2f  max degree: %llu  wedges: %llu\n",
              degrees.Mean(),
              static_cast<unsigned long long>(degrees.max()),
              static_cast<unsigned long long>(wedges));
  if (cl->GetBool("histogram", false)) {
    std::printf("degree histogram:\n%s", degrees.ToString().c_str());
  }
  return 0;
}
