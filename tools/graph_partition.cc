// Splits one graph into N vertex-range shards for sharded serving:
// per-shard GraphStores (owned edges + closure edges) plus a manifest
// recording ranges, page counts, and per-shard ghost-triangle counts.
// The merged COUNT over the shards minus the manifest ghosts equals the
// global triangle count exactly (see src/shard/shard_plan.h).
//
//   graph_partition (--input edges.txt | --store /path/base) \
//       --output /path/prefix [--shards N] [--page_size N] \
//       [--graph NAME] [--save_csr]
//
// Writes <output>.shard<i>.pages/.meta per shard and the manifest at
// <output>.manifest; --save_csr also writes <output>.csr (the unsharded
// graph, for differential testing). --graph names the graph every shard
// serves (default "g"); opt_router must be pointed at the manifest.
#include <cstdio>

#include "graph/builder.h"
#include "graph/csr_graph.h"
#include "shard/shard_plan.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "storage/record_scanner.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace opt;

namespace {

/// Rebuilds the in-memory CSR graph from an on-disk store by scanning
/// every record (each undirected edge is taken once, from its smaller
/// endpoint's list).
Result<CSRGraph> LoadStoreAsCSR(Env* env, const std::string& base_path) {
  auto store = GraphStore::Open(env, base_path);
  if (!store.ok()) return store.status();
  std::vector<Edge> edges;
  edges.reserve((*store)->num_directed_edges() / 2);
  Status s = ScanRecords(**store, 0, (*store)->num_pages() - 1,
                         [&](VertexId u, std::span<const VertexId> n) {
                           for (VertexId v : n) {
                             if (v > u) edges.emplace_back(u, v);
                           }
                         });
  if (!s.ok()) return s;
  return GraphBuilder::FromEdges(std::move(edges));
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  const bool has_source =
      cl.ok() && (cl->Has("input") != cl->Has("store"));
  if (!cl.ok() || !has_source || !cl->Has("output")) {
    std::fprintf(stderr,
                 "usage: %s (--input edges.txt | --store /path/base) "
                 "--output /path/prefix [--shards N] [--page_size N] "
                 "[--graph NAME] [--save_csr]\n",
                 argv[0]);
    return 2;
  }

  Env* env = Env::Default();
  Result<CSRGraph> graph =
      cl->Has("input")
          ? GraphBuilder::FromEdgeListFile(cl->GetString("input"))
          : LoadStoreAsCSR(env, cl->GetString("store"));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  ShardPlanOptions options;
  options.num_shards = static_cast<uint32_t>(cl->GetInt("shards", 4));
  options.page_size =
      static_cast<uint32_t>(cl->GetInt("page_size", kDefaultPageSize));
  const std::string output = cl->GetString("output");
  const std::string name = cl->GetString("graph", "g");

  auto manifest = PartitionGraph(*graph, env, name, output, options);
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s\n", manifest.status().ToString().c_str());
    return 1;
  }
  const std::string manifest_path = output + ".manifest";
  if (Status s = manifest->Save(manifest_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (cl->GetBool("save_csr", false)) {
    if (Status s = graph->Save(output + ".csr"); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::printf("graph '%s': %u vertices, %llu edges -> %u shards\n",
              name.c_str(), manifest->num_vertices,
              static_cast<unsigned long long>(manifest->num_edges),
              manifest->num_shards());
  TablePrinter table({"shard", "range", "owned", "closure", "ghosts",
                      "pages", "store"});
  for (const ShardInfo& shard : manifest->shards) {
    table.AddRow({TablePrinter::Fmt(uint64_t{shard.id}),
                  "[" + TablePrinter::Fmt(uint64_t{shard.range_lo}) + "," +
                      TablePrinter::Fmt(uint64_t{shard.range_hi}) + ")",
                  TablePrinter::Fmt(shard.owned_edges),
                  TablePrinter::Fmt(shard.closure_edges),
                  TablePrinter::Fmt(shard.ghost_triangles),
                  TablePrinter::Fmt(uint64_t{shard.num_pages}),
                  shard.base_path});
  }
  table.Print();
  std::printf("replicated adjacency: %llu bytes  ghost triangles: %llu\n",
              static_cast<unsigned long long>(manifest->replicated_bytes()),
              static_cast<unsigned long long>(
                  manifest->ghost_triangles_total()));
  std::printf("manifest: %s\n", manifest_path.c_str());
  return 0;
}
