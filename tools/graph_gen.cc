// Generates synthetic graphs (R-MAT / Erdős–Rényi / Holme–Kim) as a
// text edge list or directly as a degree-ordered GraphStore.
//
//   graph_gen --model rmat --scale 16 --edge_factor 16 --seed 1
//             (--edges out.txt | --store /path/base) [--page_size 4096]
//   graph_gen --model er --vertices 100000 --edges_count 1600000 ...
//   graph_gen --model hk --vertices 100000 --m 5 --clustering 0.2 ...
#include <cstdio>

#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/reorder.h"
#include "graph/stats.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/cli.h"
#include "util/logging.h"

using namespace opt;

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok() || (!cl->Has("edges") && !cl->Has("store"))) {
    std::fprintf(stderr,
                 "usage: %s --model rmat|er|hk [model flags] "
                 "(--edges out.txt | --store /path/base)\n",
                 argv[0]);
    return 2;
  }
  const std::string model = cl->GetString("model", "rmat");
  const uint64_t seed = static_cast<uint64_t>(cl->GetInt("seed", 1));

  CSRGraph graph;
  if (model == "rmat") {
    RmatOptions options;
    options.scale = static_cast<uint32_t>(cl->GetInt("scale", 14));
    options.edge_factor =
        static_cast<uint32_t>(cl->GetInt("edge_factor", 16));
    options.a = cl->GetDouble("a", 0.45);
    options.b = cl->GetDouble("b", 0.15);
    options.c = cl->GetDouble("c", 0.15);
    options.d = 1.0 - options.a - options.b - options.c;
    options.seed = seed;
    graph = GenerateRmat(options);
  } else if (model == "er") {
    graph = GenerateErdosRenyi(
        static_cast<VertexId>(cl->GetInt("vertices", 1 << 14)),
        static_cast<uint64_t>(cl->GetInt("edges_count", 1 << 18)), seed);
  } else if (model == "hk") {
    HolmeKimOptions options;
    options.num_vertices =
        static_cast<VertexId>(cl->GetInt("vertices", 1 << 14));
    options.edges_per_vertex = static_cast<uint32_t>(cl->GetInt("m", 5));
    options.triad_probability =
        cl->Has("clustering")
            ? TriadProbabilityForClustering(cl->GetDouble("clustering", 0.2),
                                            options.edges_per_vertex)
            : cl->GetDouble("triad_probability", 0.5);
    options.seed = seed;
    graph = GenerateHolmeKim(options);
  } else {
    std::fprintf(stderr, "unknown model %s\n", model.c_str());
    return 2;
  }
  std::printf("generated: %s\n", StatsSummary(ComputeStats(graph)).c_str());

  if (cl->Has("edges")) {
    const std::string path = cl->GetString("edges");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    for (VertexId u = 0; u < graph.num_vertices(); ++u) {
      for (VertexId v : graph.Successors(u)) {
        std::fprintf(f, "%u %u\n", u, v);
      }
    }
    std::fclose(f);
    std::printf("wrote edge list: %s\n", path.c_str());
  }
  if (cl->Has("store")) {
    CSRGraph ordered = DegreeOrder(graph).graph;
    GraphStoreOptions options;
    options.page_size =
        static_cast<uint32_t>(cl->GetInt("page_size", kDefaultPageSize));
    const std::string base = cl->GetString("store");
    if (Status s = GraphStore::Create(ordered, Env::Default(), base,
                                      options);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote store: %s.pages / .meta (degree-ordered)\n",
                base.c_str());
  }
  return 0;
}
