// bench_check: the perf-regression gate (DESIGN.md §13).
//
//   bench_check --baseline BENCH_overlap.json --fresh run1.json
//               [run2.json ...] [--strict_host] [--allow_missing]
//               [--tolerance metric=0.4,other=0.1]
//
// Compares one or more fresh bench runs against a committed baseline
// and prints a per-(row, metric) pass/regress table. Multiple --fresh
// files implement best-of-N: the most favorable fresh value per metric
// is judged, so one noisy run cannot flake CI. Exit codes: 0 pass,
// 1 regression/missing rows, 2 usage or parse error.
//
// Baselines may be in the unified schema (bench_common.h), the legacy
// bare-array format of earlier PRs, or google-benchmark JSON — the
// format is auto-detected. Host-dependent metrics (seconds, qps) gate
// only when the two runs carry the same host fingerprint, unless
// --strict_host forces them.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench_gate.h"
#include "util/cli.h"
#include "util/logging.h"

namespace opt {
namespace {

int Usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s --baseline FILE --fresh FILE [--fresh FILE ...]\n"
               "          [--strict_host] [--allow_missing]\n"
               "          [--tolerance metric=rel,metric=rel]\n",
               program);
  return 2;
}

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  const std::string baseline_path = cl->GetString("baseline", "");
  if (baseline_path.empty()) return Usage(cl->program().c_str());

  // CommandLine keeps the last value of a repeated flag, so fresh runs
  // are passed as --fresh plus positionals for N > 1.
  std::vector<std::string> fresh_paths;
  if (cl->Has("fresh")) fresh_paths.push_back(cl->GetString("fresh", ""));
  for (const std::string& p : cl->positional()) fresh_paths.push_back(p);
  if (fresh_paths.empty()) return Usage(cl->program().c_str());

  GateOptions opts;
  opts.strict_host = cl->GetBool("strict_host", false);
  opts.allow_missing = cl->GetBool("allow_missing", false);
  // --tolerance metric=rel[,metric=rel...]
  std::string tol = cl->GetString("tolerance", "");
  while (!tol.empty()) {
    const size_t comma = tol.find(',');
    const std::string item = tol.substr(0, comma);
    tol = comma == std::string::npos ? "" : tol.substr(comma + 1);
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad --tolerance entry '%s'\n", item.c_str());
      return 2;
    }
    opts.tolerance_override[item.substr(0, eq)] =
        std::stod(item.substr(eq + 1));
  }

  auto baseline = LoadBenchFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  std::vector<BenchRun> fresh;
  for (const std::string& path : fresh_paths) {
    auto run = LoadBenchFile(path);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 2;
    }
    fresh.push_back(std::move(*run));
  }

  auto report = CompareBenchRuns(*baseline, fresh, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("baseline: %s (experiment=%s, %zu rows)\n",
              baseline_path.c_str(), baseline->experiment.c_str(),
              baseline->rows.size());
  std::printf("fresh:    %zu run%s (best-of-%zu)\n", fresh.size(),
              fresh.size() == 1 ? "" : "s", fresh.size());
  std::printf("%s", report->RenderTable().c_str());
  return report->ok() ? 0 : 1;
}

}  // namespace
}  // namespace opt

int main(int argc, char** argv) { return opt::Main(argc, argv); }
